package index

import (
	"errors"
	"sync"
)

// ErrNoSpace is returned when an allocator has no free segments left.
var ErrNoSpace = errors.New("index: no free segments")

// Allocator hands out NVM segments for value placement. The baseline
// FreeList ignores content; the E2-NVM allocator (package kvstore) chooses
// a free segment whose current content is similar to the value, which is
// what "plugging a store into E2-NVM" means in the paper's Figure 12.
type Allocator interface {
	// Place returns a free segment address for storing value.
	Place(value []byte) (int, error)
	// Release recycles a freed segment whose current content is content.
	Release(addr int, content []byte)
	// FreeCount returns the number of free segments.
	FreeCount() int
}

// FreeList is the content-oblivious baseline allocator: a FIFO of free
// addresses ("new data items select an arbitrary location in memory").
type FreeList struct {
	mu   sync.Mutex
	free []int
}

// NewFreeList returns a FreeList pre-populated with addrs.
func NewFreeList(addrs []int) *FreeList {
	return &FreeList{free: append([]int(nil), addrs...)}
}

// Place implements Allocator; value content is ignored.
func (f *FreeList) Place(value []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.free) == 0 {
		return 0, ErrNoSpace
	}
	addr := f.free[0]
	f.free = f.free[1:]
	return addr, nil
}

// Release implements Allocator.
func (f *FreeList) Release(addr int, content []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.free = append(f.free, addr)
}

// FreeCount implements Allocator.
func (f *FreeList) FreeCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.free)
}
