// Package vae implements the variational autoencoder at the heart of E2-NVM
// (§3.1–3.2): an encoder q_θ(z|x) mapping an m-bit memory-segment image to a
// low-dimensional Gaussian latent, a decoder p_φ(x|z) reconstructing the
// bits, and the loss
//
//	l(θ,φ) = −E_{z∼q}[log p(x|z)] + β·KL(q(z|x) ‖ N(0,I)) + γ·‖μ − c‖²
//
// where the final term is the joint K-means clustering loss E2-NVM adds so
// that latent features and cluster assignments are optimized together.
// Training is plain SGD-style minibatch Adam with the reparameterization
// trick; everything runs on the CPU with stdlib only.
package vae

import (
	"fmt"
	"math"
	"math/rand"

	"e2nvm/internal/mat"
	"e2nvm/internal/nn"
)

// Config describes the model architecture and training hyperparameters.
type Config struct {
	InputDim  int // number of bits per memory segment (model width w)
	HiddenDim int // encoder/decoder hidden width (default max(32, InputDim/4))
	LatentDim int // latent space size (paper uses ≈10; default 10)

	LR    float64 // Adam learning rate (default 1e-3)
	Beta  float64 // KL weight (default 1)
	Gamma float64 // joint clustering loss weight (default 0; enabled by core)
	Seed  int64
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.InputDim <= 0 {
		return out, fmt.Errorf("vae: InputDim %d must be positive", out.InputDim)
	}
	if out.HiddenDim <= 0 {
		out.HiddenDim = out.InputDim / 4
		if out.HiddenDim < 32 {
			out.HiddenDim = 32
		}
	}
	if out.LatentDim <= 0 {
		out.LatentDim = 10
	}
	if out.LR <= 0 {
		out.LR = 1e-3
	}
	if out.Beta <= 0 {
		out.Beta = 1
	}
	return out, nil
}

// Loss reports the per-sample average loss components of a pass.
type Loss struct {
	Recon   float64 // binary cross-entropy reconstruction term
	KL      float64 // Kullback–Leibler term (unweighted)
	Cluster float64 // squared distance to assigned centroid (unweighted)
}

// Total returns the β/γ-weighted total loss under cfg.
func (l Loss) Total(beta, gamma float64) float64 {
	return l.Recon + beta*l.KL + gamma*l.Cluster
}

// EpochLoss pairs training and validation losses for one epoch.
type EpochLoss struct {
	Epoch      int
	Train      Loss
	Validation Loss // zero-valued when no validation set was supplied
}

// Model is a VAE.
type Model struct {
	cfg Config

	encH  *nn.Dense // InputDim → HiddenDim, ReLU
	encMu *nn.Dense // HiddenDim → LatentDim, identity
	encLV *nn.Dense // HiddenDim → LatentDim, identity (log-variance head)
	decH  *nn.Dense // LatentDim → HiddenDim, ReLU
	decO  *nn.Dense // HiddenDim → InputDim, identity logits (sigmoid fused into loss)

	opt *nn.Adam
	rng *rand.Rand
}

// New constructs a model from cfg.
func New(cfg Config) (*Model, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	m := &Model{
		cfg:   c,
		encH:  nn.NewDense(c.InputDim, c.HiddenDim, nn.ReLU, rng),
		encMu: nn.NewDense(c.HiddenDim, c.LatentDim, nn.Identity, rng),
		encLV: nn.NewDense(c.HiddenDim, c.LatentDim, nn.Identity, rng),
		decH:  nn.NewDense(c.LatentDim, c.HiddenDim, nn.ReLU, rng),
		decO:  nn.NewDense(c.HiddenDim, c.InputDim, nn.Identity, rng),
		rng:   rng,
	}
	m.opt = nn.NewAdam(c.LR)
	for _, l := range m.layers() {
		m.opt.Register(l.Params()...)
	}
	return m, nil
}

func (m *Model) layers() []*nn.Dense {
	return []*nn.Dense{m.encH, m.encMu, m.encLV, m.decH, m.decO}
}

// Config returns the (defaulted) configuration.
func (m *Model) Config() Config { return m.cfg }

// LatentDim returns the latent space width.
func (m *Model) LatentDim() int { return m.cfg.LatentDim }

// HiddenDim returns the encoder/decoder hidden width (the scratch size
// EncodeInto callers must provide).
func (m *Model) HiddenDim() int { return m.cfg.HiddenDim }

// InputDim returns the model input width in bits.
func (m *Model) InputDim() int { return m.cfg.InputDim }

// EncoderLayers exposes the deterministic encoder stack — the ReLU trunk
// (InputDim → HiddenDim) and the identity mean head (HiddenDim →
// LatentDim) — so inference kernels (internal/infer) can precompute
// layer-specific tables from the trained weights. The returned layers are
// the model's own: callers must treat them as frozen and never mutate or
// train through them.
func (m *Model) EncoderLayers() (encH, encMu *nn.Dense) { return m.encH, m.encMu }

// ParamCount returns the number of trainable scalars.
func (m *Model) ParamCount() int {
	n := 0
	for _, l := range m.layers() {
		n += l.ParamCount()
	}
	return n
}

// FLOPsPerPredict estimates multiply-accumulates for one encoder pass,
// consumed by the energy profiler.
func (m *Model) FLOPsPerPredict() float64 {
	return nn.FLOPsDense(m.cfg.InputDim, m.cfg.HiddenDim) + 2*nn.FLOPsDense(m.cfg.HiddenDim, m.cfg.LatentDim)
}

// Encode returns the latent mean μ for x — the deterministic embedding used
// for prediction after training. x must have InputDim entries in [0,1].
// Encode is safe for concurrent use on a trained model: it runs the
// stateless inference path and never touches the training caches.
func (m *Model) Encode(x []float64) []float64 {
	return m.EncodeInto(x, make([]float64, m.cfg.HiddenDim), make([]float64, m.cfg.LatentDim))
}

// EncodeInto is Encode writing into caller-provided scratch: h and mu must
// have capacity for HiddenDim and LatentDim values respectively. It returns
// mu resliced to LatentDim. Like Encode it is safe for concurrent use on a
// trained model, provided each caller supplies its own scratch.
func (m *Model) EncodeInto(x, h, mu []float64) []float64 {
	if len(x) != m.cfg.InputDim {
		panic(fmt.Sprintf("vae: Encode input %d, want %d", len(x), m.cfg.InputDim))
	}
	h = h[:m.cfg.HiddenDim]
	mu = mu[:m.cfg.LatentDim]
	m.encH.Apply(x, h)
	m.encMu.Apply(h, mu)
	return mu
}

// EncodeAll embeds every row of data.
func (m *Model) EncodeAll(data [][]float64) [][]float64 {
	out := make([][]float64, len(data))
	for i, x := range data {
		out[i] = m.Encode(x)
	}
	return out
}

// Reconstruct runs a full deterministic pass (z = μ) and returns the
// per-bit Bernoulli means.
func (m *Model) Reconstruct(x []float64) []float64 {
	mu := m.Encode(x)
	h := m.decH.Forward(mu)
	logits := m.decO.Forward(h)
	out := make([]float64, len(logits))
	for i, l := range logits {
		out[i] = sigmoid(l)
	}
	return out
}

// TrainBatch performs one optimizer step on the given minibatch. centroids,
// when non-nil, supplies the current K-means centroids for the joint
// clustering term (each sample is pulled toward its nearest centroid with
// weight Gamma). Returns the batch-average loss.
func (m *Model) TrainBatch(batch [][]float64, centroids [][]float64) Loss {
	if len(batch) == 0 {
		return Loss{}
	}
	for _, l := range m.layers() {
		l.ZeroGrad()
	}
	var agg Loss
	scale := 1.0 / float64(len(batch))
	for _, x := range batch {
		agg = addLoss(agg, m.backprop(x, centroids, scale))
	}
	m.opt.Step()
	return scaleLoss(agg, scale)
}

// backprop runs forward+backward for one sample, accumulating gradients
// scaled by gradScale, and returns the sample's (unscaled) loss terms.
func (m *Model) backprop(x []float64, centroids [][]float64, gradScale float64) Loss {
	if len(x) != m.cfg.InputDim {
		panic(fmt.Sprintf("vae: train input %d, want %d", len(x), m.cfg.InputDim))
	}
	// ---- forward ----
	h1 := m.encH.Forward(x)
	mu := append([]float64(nil), m.encMu.Forward(h1)...)
	lv := append([]float64(nil), m.encLV.Forward(h1)...)
	for i := range lv {
		lv[i] = clamp(lv[i], -8, 8) // keep exp() sane early in training
	}
	eps := make([]float64, len(mu))
	z := make([]float64, len(mu))
	for i := range z {
		eps[i] = m.rng.NormFloat64()
		z[i] = mu[i] + eps[i]*math.Exp(0.5*lv[i])
	}
	h2 := m.decH.Forward(z)
	logits := append([]float64(nil), m.decO.Forward(h2)...)

	var loss Loss
	// ---- reconstruction (sigmoid + BCE fused, numerically stable) ----
	gradLogits := make([]float64, len(logits))
	for i, l := range logits {
		xi := x[i]
		loss.Recon += bceWithLogit(l, xi)
		gradLogits[i] = (sigmoid(l) - xi) * gradScale
	}
	// ---- KL(q ‖ N(0,I)) ----
	gradMu := make([]float64, len(mu))
	gradLV := make([]float64, len(lv))
	for i := range mu {
		loss.KL += 0.5 * (mu[i]*mu[i] + math.Exp(lv[i]) - 1 - lv[i])
		gradMu[i] = m.cfg.Beta * mu[i] * gradScale
		gradLV[i] = m.cfg.Beta * 0.5 * (math.Exp(lv[i]) - 1) * gradScale
	}
	// ---- joint clustering term ----
	if centroids != nil && m.cfg.Gamma > 0 {
		c := nearestCentroid(mu, centroids)
		loss.Cluster = mat.SqDist(mu, centroids[c])
		for i := range mu {
			gradMu[i] += 2 * m.cfg.Gamma * (mu[i] - centroids[c][i]) * gradScale
		}
	}
	// ---- backward through the decoder to z ----
	gradZ := m.decH.Backward(m.decO.Backward(gradLogits))
	// Reparameterization: ∂z/∂μ = 1, ∂z/∂logvar = ½·ε·exp(½·logvar).
	for i := range gradZ {
		gradMu[i] += gradZ[i]
		gradLV[i] += gradZ[i] * 0.5 * eps[i] * math.Exp(0.5*lv[i])
	}
	// ---- backward through the two encoder heads into the trunk ----
	gH1 := m.encMu.Backward(gradMu)
	mat.AddScaled(gH1, 1, m.encLV.Backward(gradLV))
	m.encH.Backward(gH1)
	return loss
}

// Evaluate computes the average loss of data without updating parameters
// (z = μ, no sampling noise), optionally with the cluster term.
func (m *Model) Evaluate(data [][]float64, centroids [][]float64) Loss {
	if len(data) == 0 {
		return Loss{}
	}
	var agg Loss
	for _, x := range data {
		mu := m.Encode(x)
		h := m.decH.Forward(mu)
		logits := m.decO.Forward(h)
		var l Loss
		for i, lg := range logits {
			l.Recon += bceWithLogit(lg, x[i])
		}
		hEnc := m.encH.Forward(x)
		lv := m.encLV.Forward(hEnc)
		for i := range mu {
			l.KL += 0.5 * (mu[i]*mu[i] + math.Exp(clamp(lv[i], -8, 8)) - 1 - clamp(lv[i], -8, 8))
		}
		if centroids != nil {
			l.Cluster = mat.SqDist(mu, centroids[nearestCentroid(mu, centroids)])
		}
		agg = addLoss(agg, l)
	}
	return scaleLoss(agg, 1/float64(len(data)))
}

// FitOptions controls Fit.
type FitOptions struct {
	Epochs     int
	BatchSize  int
	Validation [][]float64 // optional hold-out set evaluated per epoch
	Centroids  [][]float64 // optional fixed centroids for the joint term
	// OnEpoch, when non-nil, is invoked after each epoch (e.g. to update
	// centroids for joint training or to record energy samples).
	OnEpoch func(e EpochLoss)
}

// Fit trains the model and returns the per-epoch loss history.
func (m *Model) Fit(data [][]float64, opts FitOptions) ([]EpochLoss, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("vae: empty training set")
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 20
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 32
	}
	history := make([]EpochLoss, 0, opts.Epochs)
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < opts.Epochs; e++ {
		m.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var agg Loss
		batches := 0
		for lo := 0; lo < len(idx); lo += opts.BatchSize {
			hi := lo + opts.BatchSize
			if hi > len(idx) {
				hi = len(idx)
			}
			batch := make([][]float64, 0, hi-lo)
			for _, i := range idx[lo:hi] {
				batch = append(batch, data[i])
			}
			agg = addLoss(agg, m.TrainBatch(batch, opts.Centroids))
			batches++
		}
		el := EpochLoss{Epoch: e, Train: scaleLoss(agg, 1/float64(batches))}
		if len(opts.Validation) > 0 {
			el.Validation = m.Evaluate(opts.Validation, opts.Centroids)
		}
		history = append(history, el)
		if opts.OnEpoch != nil {
			opts.OnEpoch(el)
		}
	}
	return history, nil
}

func nearestCentroid(x []float64, centroids [][]float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := mat.SqDist(x, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// bceWithLogit is the numerically stable binary cross-entropy
// max(l,0) − l·x + log(1 + e^{−|l|}).
func bceWithLogit(l, x float64) float64 {
	v := l
	if v < 0 {
		v = 0
	}
	return v - l*x + math.Log1p(math.Exp(-math.Abs(l)))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func addLoss(a, b Loss) Loss {
	return Loss{Recon: a.Recon + b.Recon, KL: a.KL + b.KL, Cluster: a.Cluster + b.Cluster}
}

func scaleLoss(l Loss, s float64) Loss {
	return Loss{Recon: l.Recon * s, KL: l.KL * s, Cluster: l.Cluster * s}
}
