package gcdiag

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCompileEndToEnd compiles one real package of this module with the
// diagnostic flags and checks the parsed report has the expected shape —
// the one fixture that exercises the compiler for real (the parser tests
// run on canned output). Skipped when no go tool is on PATH.
func TestCompileEndToEnd(t *testing.T) {
	modRoot, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cache := t.TempDir()
	src, err := NewSource(modRoot, cache)
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}

	dir := filepath.Join(modRoot, "internal", "bitvec")
	rep, err := src.For(dir)
	if err != nil {
		t.Fatalf("For(%s): %v", dir, err)
	}
	// bitvec constructs vectors on the heap, has non-inlinable methods,
	// and indexes slices in loops: all three diagnostic families must be
	// present whatever the exact toolchain wording.
	if len(rep.Escapes) == 0 || len(rep.Inlines) == 0 || len(rep.Bounds) == 0 {
		t.Fatalf("thin report: %d escapes, %d inlines, %d bounds",
			len(rep.Escapes), len(rep.Bounds), len(rep.Inlines))
	}
	for _, e := range rep.Escapes[:1] {
		if !filepath.IsAbs(e.Pos.File) {
			t.Errorf("position not absolutized: %v", e.Pos)
		}
	}

	// The raw compiler output must have landed in the cache, keyed on go
	// version + source hash.
	entries, err := os.ReadDir(cache)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v, %v", entries, err)
	}

	// A fresh Source over the same cache must reproduce the report from
	// the persisted output (same counts), and the memoized second call
	// must return the identical value.
	if again, err := src.For(dir); err != nil || again != rep {
		t.Errorf("memoized call: %p vs %p, %v", again, rep, err)
	}
	src2, err := NewSource(modRoot, cache)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := src2.For(dir)
	if err != nil {
		t.Fatalf("cached For: %v", err)
	}
	if len(rep2.Escapes) != len(rep.Escapes) || len(rep2.Bounds) != len(rep.Bounds) || len(rep2.Inlines) != len(rep.Inlines) {
		t.Errorf("cache replay diverged: %d/%d/%d vs %d/%d/%d",
			len(rep2.Escapes), len(rep2.Bounds), len(rep2.Inlines),
			len(rep.Escapes), len(rep.Bounds), len(rep.Inlines))
	}
}
