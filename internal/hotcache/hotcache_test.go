package hotcache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func newTest(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func fill(c *Cache, key uint64, val []byte) bool {
	tok := c.BeginFill(key)
	return c.CompleteFill(key, val, tok)
}

func TestBasicFillHitInvalidate(t *testing.T) {
	c := newTest(t, Config{})
	if _, ok := c.Get(1); ok {
		t.Fatal("hit on empty cache")
	}
	if !fill(c, 1, []byte("v1")) {
		t.Fatal("fill refused")
	}
	v, ok := c.Get(1)
	if !ok || string(v) != "v1" {
		t.Fatalf("got %q %v, want v1", v, ok)
	}
	c.Invalidate(1)
	if _, ok := c.Get(1); ok {
		t.Fatal("hit after invalidate")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Invalidations != 1 || s.Entries != 0 || s.Ghosts != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGetIntoReusesBuffer(t *testing.T) {
	c := newTest(t, Config{})
	fill(c, 7, []byte("hello"))
	buf := make([]byte, 16)
	v, ok := c.GetInto(7, buf)
	if !ok || string(v) != "hello" {
		t.Fatalf("got %q %v", v, ok)
	}
	if &v[0] != &buf[0] {
		t.Fatal("GetInto did not reuse the caller's buffer")
	}
	// The cache's copy must be independent of what the caller does next.
	v[0] = 'X'
	v2, _ := c.Get(7)
	if string(v2) != "hello" {
		t.Fatalf("cache value corrupted by caller: %q", v2)
	}
}

// TestFillInvalidateMatrix sweeps every ordering of a fill (token, store
// read, install) against an invalidation (seq bump, removal) and asserts
// the protocol's guarantee: after the invalidation returns — the write
// is acknowledged — the stale value is never served. This is the
// cache-level crash-matrix for invalidate-before-ack ordering.
func TestFillInvalidateMatrix(t *testing.T) {
	// Each case is where the invalidation happens relative to the fill:
	// 0: before BeginFill, 1: after BeginFill / before CompleteFill,
	// 2: after CompleteFill.
	for point := 0; point <= 2; point++ {
		c := newTest(t, Config{})
		key := uint64(42)
		stale := []byte("stale")

		if point == 0 {
			c.Invalidate(key)
		}
		tok := c.BeginFill(key)
		// ... the fill's store read returns `stale` here ...
		if point == 1 {
			c.Invalidate(key) // the writer overwrote the value and acked
		}
		resident := c.CompleteFill(key, stale, tok)
		if point == 2 {
			c.Invalidate(key)
		}

		if point >= 1 {
			if point == 1 && resident {
				t.Fatalf("point %d: stale fill reported resident", point)
			}
			if v, ok := c.Get(key); ok {
				t.Fatalf("point %d: served stale value %q after ack", point, v)
			}
		} else if !resident {
			t.Fatalf("point 0: clean fill refused")
		}
	}
}

// TestFillRaceNeverStale hammers one key with a writer (version bump,
// invalidate, ack) and concurrent miss-filling readers, asserting the
// protocol's contract: a read never serves a version older than the
// newest write that was fully acknowledged before the read began.
func TestFillRaceNeverStale(t *testing.T) {
	c := newTest(t, Config{})
	key := uint64(99)
	var store atomic.Uint64 // the "device": current version of key
	var acked atomic.Uint64 // highest version whose invalidate returned
	stop := make(chan struct{})
	var writerWG sync.WaitGroup

	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for v := uint64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			store.Store(v)    // store write durable
			c.Invalidate(key) // invalidate before ack
			acked.Store(v)    // acknowledged
		}
	}()

	errs := make(chan error, 4)
	var readerWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			buf := make([]byte, 8)
			for i := 0; i < 20000; i++ {
				floor := acked.Load() // acked before this read began
				v, ok := c.GetInto(key, buf)
				if !ok {
					tok := c.BeginFill(key)
					putU64(buf, store.Load()) // the store read
					c.CompleteFill(key, buf, tok)
					v = buf
				}
				if got := getU64(v); got < floor {
					errs <- fmt.Errorf("stale read: version %d served after version %d was acked", got, floor)
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func TestHotnessAndPromotion(t *testing.T) {
	c := newTest(t, Config{HotHits: 4})
	// Two keys in (very likely) different buckets; hotness is per key.
	fill(c, 1, []byte("a"))
	fill(c, 2, []byte("b"))
	for i := 0; i < 10; i++ {
		c.Get(1)
	}
	if _, hot := c.Hotness(1); !hot {
		t.Fatal("key 1 not hot after 10 touches")
	}
	if _, hot := c.Hotness(2); hot {
		t.Fatal("key 2 hot after 1 touch")
	}
	// Write-hot ghost: only invalidations, never cached reads.
	for i := 0; i < 10; i++ {
		c.Invalidate(3)
	}
	present, hot := c.Hotness(3)
	if present {
		t.Fatal("ghost reported a resident value")
	}
	if !hot {
		t.Fatal("write-hot key not hot")
	}
}

func TestPromotionReordersRing(t *testing.T) {
	c := newTest(t, Config{Buckets: 16})
	// Force several keys into one bucket by brute-force searching keys
	// that share a bucket with key base.
	base := uint64(1)
	b := c.bucketOf(base)
	keys := []uint64{base}
	for k := uint64(2); len(keys) < 3; k++ {
		if c.bucketOf(k) == b {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		fill(c, k, []byte{byte(k)})
	}
	last := keys[len(keys)-1]
	for i := 0; i < adjustEvery*2; i++ {
		c.Get(last)
	}
	if r := b.head.Load(); r.entries[0].key != last {
		t.Fatalf("hot key %d not at ring head (head=%d)", last, r.entries[0].key)
	}
	if c.Stats().Adjustments == 0 {
		t.Fatal("no adjustments counted")
	}
}

func TestEvictionBudget(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 8 << 10, Buckets: 16})
	val := bytes.Repeat([]byte{0xAB}, 128)
	for k := uint64(0); k < 1000; k++ {
		fill(c, k, val)
	}
	if got := c.Bytes(); got > 8<<10 {
		t.Fatalf("footprint %d over budget", got)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if s.Entries == 0 {
		t.Fatal("eviction emptied the cache")
	}
}

func TestOversizeValueRefused(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 1 << 10})
	if fill(c, 1, make([]byte, 512)) {
		t.Fatal("admitted a value larger than a quarter of the budget")
	}
	if c.Len() != 0 {
		t.Fatal("oversize value resident")
	}
}

func TestResetCounters(t *testing.T) {
	c := newTest(t, Config{})
	fill(c, 1, []byte("x"))
	c.Get(1)
	c.Get(2)
	c.Invalidate(1)
	c.ResetCounters()
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 || s.Invalidations != 0 {
		t.Fatalf("counters survived reset: %+v", s)
	}
	if s.Ghosts != 1 {
		t.Fatalf("residency should survive reset: %+v", s)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	c := newTest(t, Config{MaxBytes: 64 << 10, Buckets: 32})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			buf := make([]byte, 32)
			for i := 0; i < 5000; i++ {
				k := uint64(r.Intn(256))
				switch r.Intn(4) {
				case 0:
					c.Invalidate(k)
				case 1:
					tok := c.BeginFill(k)
					c.CompleteFill(k, buf[:16], tok)
				default:
					c.GetInto(k, buf)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Internal accounting must still balance: recompute bytes from the
	// rings and compare with the counter.
	var want int64
	for i := range c.buckets {
		if r := c.buckets[i].head.Load(); r != nil {
			for _, e := range r.entries {
				want += entryBytes(e)
			}
		}
	}
	if got := c.Bytes(); got != want {
		t.Fatalf("byte accounting drifted: counter %d, rings %d", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{MaxBytes: -1}); err == nil {
		t.Fatal("negative MaxBytes accepted")
	}
	if _, err := New(Config{Buckets: -1}); err == nil {
		t.Fatal("negative Buckets accepted")
	}
	c := newTest(t, Config{Buckets: 100})
	if got := len(c.buckets); got != 128 {
		t.Fatalf("buckets %d, want next power of two 128", got)
	}
}
