package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// TestResetStatsZeroesEveryCounter drives every store-level counter
// non-zero, resets, and asserts a fully zero Stats snapshot — including
// the retrain counter, which is derived from the manager's cumulative
// count and must be re-based, not merely copied.
func TestResetStatsZeroesEveryCounter(t *testing.T) {
	s := openStore(t, 32, 64, Options{})

	val := []byte("v")
	for k := uint64(0); k < 8; k++ {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Get(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Scan(0, 10, func(uint64, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Retrain(); err != nil {
		t.Fatal(err)
	}
	// Fence a segment and force worn writes + a retirement through it.
	if err := s.Device().FailSegment(5); err != nil {
		t.Fatal(err)
	}
	for k := uint64(100); k < 140; k++ {
		if err := s.Put(k, val); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Scrub(64); err != nil {
		t.Fatal(err)
	}

	before := s.Stats()
	if before.Puts == 0 || before.Gets == 0 || before.Deletes == 0 || before.Scans == 0 || before.Retrains == 0 {
		t.Fatalf("setup did not exercise the counters: %+v", before)
	}

	s.ResetStats()
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("Stats after ResetStats = %+v, want all zero", got)
	}

	// Counters keep working after the reset, and Retrains counts deltas.
	if err := s.Put(1, val); err != nil {
		t.Fatal(err)
	}
	if err := s.Retrain(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.Puts != 1 || after.Retrains != 1 {
		t.Fatalf("post-reset Stats = %+v, want Puts=1 Retrains=1", after)
	}
}

// TestScanReentrantCallback calls back into the store from inside a Scan
// callback. The old implementation held s.mu across the callback, so a
// re-entrant Get deadlocked on the non-reentrant mutex.
func TestScanReentrantCallback(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	want := map[uint64][]byte{}
	for k := uint64(10); k < 20; k++ {
		v := []byte(fmt.Sprintf("val-%d", k))
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	visited := 0
	err := s.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		visited++
		if !bytes.Equal(v, want[k]) {
			t.Fatalf("scan key %d = %q, want %q", k, v, want[k])
		}
		// Re-enter through every serving-path entry point.
		got, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(got, want[k]) {
			t.Fatalf("re-entrant Get(%d) = (%q,%v,%v)", k, got, ok, err)
		}
		if s.Len() != len(want) {
			t.Fatalf("re-entrant Len = %d, want %d", s.Len(), len(want))
		}
		if k == 12 {
			// A nested scan must not deadlock either.
			if err := s.Scan(10, 11, func(uint64, []byte) bool { return true }); err != nil {
				t.Fatalf("nested Scan: %v", err)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != len(want) {
		t.Fatalf("visited %d keys, want %d", visited, len(want))
	}
}

// TestScanChunkBoundaries forces multiple capture chunks and checks
// ordering, completeness, and early termination across chunk boundaries.
func TestScanChunkBoundaries(t *testing.T) {
	s := openStore(t, 32, 512, Options{})
	n := uint64(scanChunk*2 + scanChunk/2) // 2.5 chunks
	var buf [8]byte
	for k := uint64(0); k < n; k++ {
		binary.LittleEndian.PutUint64(buf[:], k)
		if err := s.Put(k, buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	err := s.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		if got := binary.LittleEndian.Uint64(v); got != k {
			t.Fatalf("key %d carries value %d", k, got)
		}
		keys = append(keys, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(keys)) != n {
		t.Fatalf("scanned %d keys, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != uint64(i) {
			t.Fatalf("keys out of order at %d: %d", i, k)
		}
	}
	// Early stop exactly on a chunk boundary.
	count := 0
	if err := s.Scan(0, ^uint64(0), func(uint64, []byte) bool {
		count++
		return count < scanChunk
	}); err != nil {
		t.Fatal(err)
	}
	if count != scanChunk {
		t.Fatalf("early-stop visited %d, want %d", count, scanChunk)
	}
}

// TestNextInto walks a store in key order through the shard-merge
// primitive.
func TestNextInto(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	for _, k := range []uint64{5, 9, 2, 30} {
		if err := s.Put(k, []byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	buf := make([]byte, 0, 16)
	cursor := uint64(0)
	for {
		k, v, ok, err := s.NextInto(cursor, 29, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if want := fmt.Sprintf("v%d", k); string(v) != want {
			t.Fatalf("NextInto key %d value %q, want %q", k, v, want)
		}
		got = append(got, k)
		buf = v[:0]
		cursor = k + 1
	}
	want := []uint64{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("NextInto walked %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextInto walked %v, want %v", got, want)
		}
	}
}

// TestRetrainConcurrentPut hammers Put/Get while a synchronous Retrain is
// in flight, then verifies every key. Run under -race this also checks the
// documented contract that the retrain snapshot may interleave with
// writers without a data race.
func TestRetrainConcurrentPut(t *testing.T) {
	s := openStore(t, 32, 256, Options{})
	const keys = 32
	var buf [8]byte
	for k := uint64(0); k < keys; k++ {
		binary.LittleEndian.PutUint64(buf[:], k)
		if err := s.Put(k, buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var b [8]byte
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(i % keys)
			binary.LittleEndian.PutUint64(b[:], k)
			if err := s.Put(k, b[:]); err != nil {
				t.Errorf("concurrent Put: %v", err)
				return
			}
			if _, _, err := s.Get(k); err != nil {
				t.Errorf("concurrent Get: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if err := s.Retrain(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	for k := uint64(0); k < keys; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%d) after retrain = (%v,%v)", k, ok, err)
		}
		if got := binary.LittleEndian.Uint64(v); got != k {
			t.Fatalf("key %d carries value %d after retrain", k, got)
		}
	}
	if st := s.Stats(); st.Retrains != 2 {
		t.Fatalf("Retrains = %d, want 2", st.Retrains)
	}
}
