package e2nvm

import (
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
)

// Error sentinels surfaced by Store operations, re-exported so callers can
// use errors.Is without importing internal packages.
var (
	// ErrWornOut marks a write refused (or verified bad) because the
	// target segment's cells are worn out.
	ErrWornOut = kvstore.ErrWornOut
	// ErrDegraded is returned instead of a bare ErrNoSpace once segment
	// retirement has consumed more than Config.DegradeThreshold of the
	// device. It wraps ErrNoSpace.
	ErrDegraded = kvstore.ErrDegraded
	// ErrNoSpace is returned when no free segment remains.
	ErrNoSpace = kvstore.ErrNoSpace
	// ErrCorrupt is returned by reads whose stored record fails its
	// checksum — the medium destroyed the data, but the store never
	// serves wrong bytes.
	ErrCorrupt = kvstore.ErrCorrupt
	// ErrValueTooLarge is returned by Put for values over MaxValue.
	ErrValueTooLarge = kvstore.ErrValueTooLarge
)

// FaultConfig configures the simulated device's cell wear-out process. The
// zero value disables probabilistic faults; segments can still be failed
// deterministically with Store.InjectStuckAt and Store.FailSegment.
type FaultConfig struct {
	// Seed makes the fault process deterministic (independent of
	// Config.Seed so workloads can be replayed against different fault
	// draws).
	Seed int64
	// ProbPerWrite is the chance that a write to a segment past its
	// wear-out onset sticks additional cells.
	ProbPerWrite float64
	// OnsetFraction is the fraction of EnduranceWrites a segment must
	// consume before faults can occur (default 0.85).
	OnsetFraction float64
	// BitsPerFault is how many cells stick per fault event (default 1).
	BitsPerFault int
}

func (f FaultConfig) toInternal() nvm.FaultConfig {
	return nvm.FaultConfig{
		Seed:          f.Seed,
		ProbPerWrite:  f.ProbPerWrite,
		OnsetFraction: f.OnsetFraction,
		BitsPerFault:  f.BitsPerFault,
	}
}

// Health is a snapshot of the store's capacity state under wear-out.
type Health struct {
	DataSegments int  // segments in the data zone
	Retired      int  // segments permanently out of circulation
	LiveKeys     int  // records reachable through the index
	PoolFree     int  // free segments available for placement
	Degraded     bool // retirement has crossed Config.DegradeThreshold
}

// Health reports the store's current capacity state.
func (s *Store) Health() Health {
	h := s.inner.Health()
	return Health{
		DataSegments: h.DataSegments,
		Retired:      h.Retired,
		LiveKeys:     h.LiveKeys,
		PoolFree:     h.PoolFree,
		Degraded:     h.Degraded,
	}
}

// ScrubReport summarizes one incremental Scrub pass.
type ScrubReport struct {
	Scanned   int // segments examined
	Relocated int // live records moved off failing segments
	Retired   int // segments newly taken out of circulation
	Lost      int // indexed records whose data is already unrecoverable
}

// Scrub examines up to n segments for latent cell faults, relocating live
// records off failing segments and retiring them. Calling it periodically
// (a media scrubber) turns silent wear into bounded capacity loss before
// the next Put trips over it. It is a no-op when retirement is disabled.
func (s *Store) Scrub(n int) (ScrubReport, error) {
	r, err := s.inner.Scrub(n)
	return ScrubReport{
		Scanned:   r.Scanned,
		Relocated: r.Relocated,
		Retired:   r.Retired,
		Lost:      r.Lost,
	}, err
}

// InjectStuckAt deterministically sticks one cell of a segment at its
// current value, for fault-injection tests and experiments.
func (s *Store) InjectStuckAt(addr, bit int) error { return s.dev.InjectStuckAt(addr, bit) }

// FailSegment fences a whole segment: reads still serve its frozen
// content, but every future write is refused with ErrWornOut.
func (s *Store) FailSegment(addr int) error { return s.dev.FailSegment(addr) }
