package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"

	"e2nvm/internal/nvm"
)

// tiny is the scale all experiment tests run at; the nightly bench harness
// runs at full scale.
const tiny = 0.12

func runExp(t *testing.T, id string, scale float64) *Result {
	t.Helper()
	r, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := r(RunConfig{Scale: scale, Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result ID %q, want %q", res.ID, id)
	}
	if res.Table == nil || res.Table.NumRows() == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), id) {
		t.Fatalf("%s Print output missing id", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig01", "fig02", "fig04", "fig07", "fig08", "fig09", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"fig18", "fig19",
		"abl-search", "abl-joint", "abl-latent", "abl-diff", "abl-txn",
		"exp-extended", "exp-fault", "exp-hotcold", "exp-shard", "tbl01",
	}
	ids := IDs()
	got := map[string]bool{}
	for _, id := range ids {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get of unknown id succeeded")
	}
}

func TestScaleDefaults(t *testing.T) {
	c := RunConfig{}
	if c.scale() != 1 {
		t.Fatal("zero scale should default to 1")
	}
	if c.scaleInt(100, 10) != 100 {
		t.Fatal("scaleInt at default scale")
	}
	c.Scale = 0.05
	if c.scaleInt(100, 10) != 10 {
		t.Fatal("scaleInt should clamp to lo")
	}
}

func TestFig1ShapeEnergyIncreasesWithDifference(t *testing.T) {
	res := runExp(t, "fig01", tiny)
	s := res.Series[0] // energy vs diff
	if s.Y[0] >= s.Y[len(s.Y)-1] {
		t.Fatalf("energy at 0%% diff (%v) should be below 100%% diff (%v)", s.Y[0], s.Y[len(s.Y)-1])
	}
	// Latency also increases with difference.
	l := res.Series[1]
	if l.Y[0] >= l.Y[len(l.Y)-1] {
		t.Fatalf("latency at 0%% (%v) should be below 100%% (%v)", l.Y[0], l.Y[len(l.Y)-1])
	}
}

func TestFig2ShapePsiOneIsWorst(t *testing.T) {
	res := runExp(t, "fig02", tiny)
	// The first row (ψ=1) must show more flips than the last (ψ=100) for
	// every scheme; spot-check via the table string is brittle, so re-run
	// logic is embedded in the runner. Here we only check row count.
	if res.Table.NumRows() != 7 {
		t.Fatalf("fig02 rows = %d, want 7 ψ values", res.Table.NumRows())
	}
}

func TestFig4Runs(t *testing.T) {
	res := runExp(t, "fig04", tiny)
	if res.Table.NumRows() != 7 {
		t.Fatalf("fig04 rows = %d, want 7 dims", res.Table.NumRows())
	}
}

func TestFig7Runs(t *testing.T) {
	res := runExp(t, "fig07", tiny)
	if res.Table.NumRows() != 5 {
		t.Fatalf("fig07 rows = %d, want 5 pool sizes", res.Table.NumRows())
	}
}

func TestFig8ElbowNearValley(t *testing.T) {
	res := runExp(t, "fig08", 0.3)
	// The note records both; they should be present.
	joined := strings.Join(res.Notes, " ")
	if !strings.Contains(joined, "elbow K") || !strings.Contains(joined, "valley K") {
		t.Fatalf("fig08 notes missing elbow/valley: %v", res.Notes)
	}
}

func TestFig9LossesDecrease(t *testing.T) {
	res := runExp(t, "fig09", 0.3)
	for _, s := range res.Series {
		if !strings.HasSuffix(s.Name, "/train") {
			continue
		}
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Fatalf("series %s did not decrease: %v -> %v", s.Name, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestFig10Runs(t *testing.T) {
	res := runExp(t, "fig10", tiny)
	if res.Table.NumRows() != 6*5 {
		t.Fatalf("fig10 rows = %d, want 30 (6 datasets × 5 k)", res.Table.NumRows())
	}
}

func TestFig11Runs(t *testing.T) {
	res := runExp(t, "fig11", tiny)
	if res.Table.NumRows() != 3*2*6 {
		t.Fatalf("fig11 rows = %d, want 36", res.Table.NumRows())
	}
}

func TestFig12EveryStoreImproves(t *testing.T) {
	res := runExp(t, "fig12", 0.3)
	out := res.Table.String()
	for _, store := range []string{"B+-Tree", "WiscKey", "Path Hashing", "FP-Tree", "NoveLSM"} {
		if !strings.Contains(out, store) {
			t.Fatalf("fig12 missing store %s", store)
		}
	}
	// Improvement column must be positive for every row: cheap check via
	// absence of negative percentage markers like " -".
	for _, line := range strings.Split(out, "\n")[2:] {
		if strings.Contains(line, " -") && strings.Contains(line, "%") {
			t.Fatalf("fig12 row shows regression: %s", line)
		}
	}
}

func TestFig13Runs(t *testing.T) {
	res := runExp(t, "fig13", tiny)
	if res.Table.NumRows() != 16 {
		t.Fatalf("fig13 rows = %d, want 16", res.Table.NumRows())
	}
}

func TestFig14AllStrategiesCovered(t *testing.T) {
	res := runExp(t, "fig14", tiny)
	if res.Table.NumRows() != 2*3*7 {
		t.Fatalf("fig14 rows = %d, want 42 (2 datasets × 3 positions × 7 types)", res.Table.NumRows())
	}
}

func TestFig15ZeroPaddingIsFloor(t *testing.T) {
	res := runExp(t, "fig15", 0.25)
	s := res.Series[0]
	for i := 1; i < s.Len(); i++ {
		if s.Y[i] < s.Y[0]*0.95 {
			t.Fatalf("padded fraction %v%% beat 0%% (%v < %v)", s.X[i], s.Y[i], s.Y[0])
		}
	}
}

func TestFig16PhasesPresent(t *testing.T) {
	res := runExp(t, "fig16", tiny)
	out := res.Table.String()
	for _, phase := range []string{"1:train", "2:write", "3:retrain", "4:write", "baseline:wear-leveling"} {
		if !strings.Contains(out, phase) {
			t.Fatalf("fig16 missing phase %s", phase)
		}
	}
}

func TestFig17RetrainHelps(t *testing.T) {
	res := runExp(t, "fig17", tiny)
	if res.Table.NumRows() != 5 {
		t.Fatalf("fig17 rows = %d, want 5 scenarios", res.Table.NumRows())
	}
}

func TestFig18Runs(t *testing.T) {
	res := runExp(t, "fig18", tiny)
	if res.Table.NumRows() != 4 {
		t.Fatalf("fig18 rows = %d", res.Table.NumRows())
	}
}

func TestFig19WearConcentrated(t *testing.T) {
	res := runExp(t, "fig19", tiny)
	if len(res.Series) != 2 {
		t.Fatalf("fig19 series = %d, want 2 CDFs", len(res.Series))
	}
	// CDFs end at 1.
	for _, s := range res.Series {
		if s.Y[s.Len()-1] != 1 {
			t.Fatalf("CDF %s does not reach 1", s.Name)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	for _, id := range []string{"abl-search", "abl-joint", "abl-latent", "abl-diff", "abl-txn"} {
		runExp(t, id, tiny)
	}
}

func TestTable1RecoverGroups(t *testing.T) {
	res := runExp(t, "tbl01", 1)
	if res.Table.NumRows() != 18 {
		t.Fatalf("tbl01 rows = %d, want 18 (3 positions × 6 types)", res.Table.NumRows())
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "recovers the paper's three segment groups") {
			found = true
		}
	}
	if !found {
		t.Fatalf("model failed to recover the paper's Table 1 grouping: %v", res.Notes)
	}
}

func TestExtendedComparison(t *testing.T) {
	res := runExp(t, "exp-extended", tiny)
	if res.Table.NumRows() != 6 {
		t.Fatalf("exp-extended rows = %d, want 6 schemes", res.Table.NumRows())
	}
}

func TestPlacementHarnessConservesPool(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.DefaultConfig(8, 16))
	if err != nil {
		t.Fatal(err)
	}
	p := newFIFOPlacer(addrRange(16))
	items := make([][]byte, 40)
	for i := range items {
		items[i] = make([]byte, 8)
		items[i][0] = byte(i)
	}
	if _, err := runPlacement(dev, p, items, 8); err != nil {
		t.Fatal(err)
	}
	// After the drain, every address is free again.
	if len(p.free) != 16 {
		t.Fatalf("pool not conserved: %d free, want 16", len(p.free))
	}
	// Running again must therefore succeed.
	if _, err := runPlacement(dev, p, items, 8); err != nil {
		t.Fatal(err)
	}
}

func TestToBytesTruncatesAndPads(t *testing.T) {
	long := make([]float64, 100)
	for i := range long {
		long[i] = 1
	}
	b := toBytes(long, 4) // 32 bits kept
	for i, x := range b {
		if x != 0xff {
			t.Fatalf("byte %d = %x", i, x)
		}
	}
	short := []float64{1}
	b = toBytes(short, 2)
	if b[0] != 0x01 || b[1] != 0 {
		t.Fatalf("pad wrong: %x", b)
	}
}

func TestResultJSON(t *testing.T) {
	res := runExp(t, "fig01", tiny)
	doc, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		ID      string     `json:"id"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
		Series  []struct {
			Name string    `json:"name"`
			X    []float64 `json:"x"`
		} `json:"series"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, doc)
	}
	if parsed.ID != "fig01" || len(parsed.Rows) != 11 || len(parsed.Series) != 2 {
		t.Fatalf("JSON shape wrong: id=%s rows=%d series=%d", parsed.ID, len(parsed.Rows), len(parsed.Series))
	}
	if len(parsed.Headers) == 0 || len(parsed.Rows[0]) != len(parsed.Headers) {
		t.Fatal("headers/rows mismatch")
	}
}

func TestFaultSweepShape(t *testing.T) {
	res := runExp(t, "exp-fault", tiny)
	rows := res.Table.Rows()
	if len(rows) != 4 {
		t.Fatalf("exp-fault rows = %d, want 4 placement×retirement modes", len(rows))
	}
	// wrong_reads (last column) must be zero in every mode — the runner
	// also enforces this internally, but keep the bar visible here.
	for _, row := range rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("mode %q served wrong reads: %v", row[0], row)
		}
	}
}

func TestShardParityFlat(t *testing.T) {
	res := runExp(t, "exp-shard", 0.25)
	rows := res.Table.Rows()
	if len(rows) != 3 {
		t.Fatalf("exp-shard rows = %d, want 3 shard counts", len(rows))
	}
	for _, row := range rows {
		delta, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("unparsable delta %q: %v", row[2], err)
		}
		// Sharding must not cost placement quality: flips/databit stays
		// within a few percent of the unsharded store. The bound is looser
		// than the 5% bench-scale acceptance bar because this runs tiny.
		if math.Abs(delta) > 10 {
			t.Fatalf("shards=%s flips/databit drifted %.1f%% from unsharded", row[0], delta)
		}
	}
}

func TestHotColdShape(t *testing.T) {
	res := runExp(t, "exp-hotcold", tiny)
	rows := res.Table.Rows()
	if len(rows) != 4 {
		t.Fatalf("exp-hotcold rows = %d, want 2 read modes + 2 wear modes", len(rows))
	}
	// The cache must absorb device reads: cached reads/op strictly below
	// uncached, and a positive hit rate.
	uncached, err := strconv.ParseFloat(rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := strconv.ParseFloat(rows[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if cached >= uncached {
		t.Fatalf("cache absorbed nothing: %.3f dev reads/op cached vs %.3f uncached", cached, uncached)
	}
	hit, err := strconv.ParseFloat(rows[1][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if hit <= 0 {
		t.Fatalf("cached hit rate %.1f%%, want > 0", hit)
	}
	// Steering must not reach the wear-out cliff earlier than unsteered
	// placement, and must actually steer.
	frPlain, err := strconv.ParseFloat(rows[2][4], 64)
	if err != nil {
		t.Fatal(err)
	}
	frSteer, err := strconv.ParseFloat(rows[3][4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if frPlain >= 0 && frSteer >= 0 && frSteer < frPlain {
		t.Fatalf("steering retired earlier: op %v vs %v unsteered", frSteer, frPlain)
	}
	if steered, _ := strconv.ParseFloat(rows[3][6], 64); steered <= 0 {
		t.Fatalf("steered mode reported %v steered placements", steered)
	}
}
