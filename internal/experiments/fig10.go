package experiments

import (
	"fmt"
	"time"

	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/pnw"
	"e2nvm/internal/rbw"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig10", Fig10) }

// Fig10 reproduces Figure 10: the average number of bits updated per PMem
// access for DCW, MinShift, FNW, Captopril, PNW and E2-NVM across the
// real-world textual and multimedia datasets, sweeping the cluster count k
// from 1 to 30 (only the clustering-based methods respond to k), plus the
// per-item prediction latency of PNW vs E2-NVM. At k=1 E2-NVM, PNW and DCW
// coincide; at large k the paper reports E2-NVM up to 3.2× better than PNW
// and up to 4.23× better than the RBW baselines.
func Fig10(cfg RunConfig) (*Result, error) {
	const segSize = 32
	n := cfg.scaleInt(400, 120)
	writes := cfg.scaleInt(800, 150)
	ks := []int{1, 5, 10, 20, 30}

	bits := segSize * 8
	sets := []*workload.Dataset{
		workload.AmazonAccessLike(n+writes, bits, cfg.Seed),
		workload.RoadNetworkLike(n+writes, bits, cfg.Seed+1),
		workload.PubMedLike(n+writes, bits, cfg.Seed+2),
		workload.MNISTLike(n+writes, bits, cfg.Seed+3),
		workload.CIFARLike(n+writes, bits, cfg.Seed+4),
		workload.CCTVLike(n+writes, bits, cfg.Seed+5),
	}

	table := stats.NewTable("dataset", "k",
		"DCW", "MinShift", "FNW", "Captopril", "PNW", "E2-NVM",
		"pnw_pred_us", "e2nvm_pred_us")

	for _, ds := range sets {
		train := ds.Items[:n]
		seedImgs := toBytesAll(train, segSize)
		items := toBytesAll(ds.Items[n:], segSize)
		devCfg := nvm.DefaultConfig(segSize, n)

		// RBW baselines are k-independent: run them once per dataset.
		rbwAvg := map[string]float64{}
		for _, sch := range []rbw.Scheme{rbw.DCW{}, rbw.MinShift{}, rbw.FNW{}, rbw.Captopril{}} {
			dev, err := seededDevice(devCfg, seedImgs)
			if err != nil {
				return nil, err
			}
			avg, err := runInPlaceScheme(dev, sch, items, n)
			if err != nil {
				return nil, err
			}
			rbwAvg[sch.Name()] = avg
		}

		for _, k := range ks {
			pm, err := pnw.Train(train, pnw.Config{K: k, Mode: pnw.PCAKMeans, PCADims: 10, Seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			em, err := core.Train(train, core.Config{
				InputBits: bits, K: k, LatentDim: 10,
				Epochs: 10, JointEpochs: 2, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			run := func(model predictor) (float64, error) {
				dev, err := seededDevice(devCfg, seedImgs)
				if err != nil {
					return 0, err
				}
				p, err := newClusterPlacer(model, k, dev, addrRange(n))
				if err != nil {
					return 0, err
				}
				dev.ResetStats()
				if _, err := runPlacement(dev, p, items, n/2); err != nil {
					return 0, err
				}
				s := dev.Stats()
				return float64(s.BitsFlipped) / float64(s.Writes), nil
			}
			pnwFlips, err := run(pnwAdapter{pm})
			if err != nil {
				return nil, err
			}
			e2Flips, err := run(em)
			if err != nil {
				return nil, err
			}

			// Prediction latency per item, averaged over the test items.
			probe := items
			if len(probe) > 200 {
				probe = probe[:200]
			}
			t0 := time.Now() // lint:allow deepdeterminism — Figure 10 reports wall-clock prediction latency
			for _, it := range probe {
				mustPredict(pnwAdapter{pm}.PredictBytes(it))
			}
			pnwUs := float64(time.Since(t0).Microseconds()) / float64(len(probe)) // lint:allow deepdeterminism — Figure 10 reports wall-clock prediction latency
			t0 = time.Now() // lint:allow deepdeterminism — Figure 10 reports wall-clock prediction latency
			for _, it := range probe {
				mustPredict(em.PredictBytes(it))
			}
			e2Us := float64(time.Since(t0).Microseconds()) / float64(len(probe)) // lint:allow deepdeterminism — Figure 10 reports wall-clock prediction latency

			table.AddRow(ds.Name, k,
				rbwAvg["DCW"], rbwAvg["MinShift"], rbwAvg["FNW"], rbwAvg["Captopril"],
				pnwFlips, e2Flips, pnwUs, e2Us)
		}
	}
	return &Result{
		ID:    "fig10",
		Title: "Bits updated per access and prediction latency vs k, all schemes, all datasets",
		Table: table,
		Notes: []string{
			fmt.Sprintf("%d seed segments × %d B, %d writes per configuration", n, segSize, writes),
			"expected shape: clustering methods improve with k; E2-NVM ≤ PNW; RBW baselines flat in k; E2-NVM prediction latency > PNW (two model passes)",
		},
	}, nil
}
