// Package workload generates the evaluation inputs of the paper: synthetic
// stand-ins for its real-world datasets (MNIST, Fashion-MNIST, CIFAR-10,
// ImageNet, the CCTV/Sherbrooke traffic videos, PubMed, Amazon Access
// Samples, the 3D Road Network), and the six YCSB core workloads.
//
// The datasets are deterministic given a seed and plant the property
// E2-NVM exploits in the real data — clusterability in Hamming space —
// with controllable cluster counts, per-class structure, and noise, so the
// relative orderings the paper reports are reproduced by construction of
// the same mechanism rather than by fiat.
package workload

import (
	"fmt"
	"math/rand"
)

// Dataset is a set of equally sized bit vectors.
type Dataset struct {
	Name  string
	Bits  int
	Items [][]float64 // each of length Bits, values in {0,1}
	// Labels holds the planted class of each item, when meaningful.
	Labels []int
}

// Bytes returns item i packed into bytes (LSB-first per byte).
func (d *Dataset) Bytes(i int) []byte {
	out := make([]byte, (d.Bits+7)/8)
	for j, b := range d.Items[i] {
		if b >= 0.5 {
			out[j>>3] |= 1 << (uint(j) & 7)
		}
	}
	return out
}

// Split returns the first n items as training set and the rest as test set
// (shallow views).
func (d *Dataset) Split(n int) (train, test [][]float64) {
	if n > len(d.Items) {
		n = len(d.Items)
	}
	return d.Items[:n], d.Items[n:]
}

// protoSet draws k prototype patterns of the given density.
func protoSet(r *rand.Rand, k, bits int, density float64) [][]float64 {
	protos := make([][]float64, k)
	for c := range protos {
		p := make([]float64, bits)
		for j := range p {
			if r.Float64() < density {
				p[j] = 1
			}
		}
		protos[c] = p
	}
	return protos
}

// sampleAround returns a noisy copy of proto.
func sampleAround(r *rand.Rand, proto []float64, noise float64) []float64 {
	row := append([]float64(nil), proto...)
	for j := range row {
		if r.Float64() < noise {
			row[j] = 1 - row[j]
		}
	}
	return row
}

// classDataset builds n items around k prototypes.
func classDataset(name string, seed int64, n, k, bits int, density, noise float64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	protos := protoSet(r, k, bits, density)
	d := &Dataset{Name: name, Bits: bits}
	for i := 0; i < n; i++ {
		c := r.Intn(k)
		d.Items = append(d.Items, sampleAround(r, protos[c], noise))
		d.Labels = append(d.Labels, c)
	}
	return d
}

// MNISTLike models 10-class grayscale digit images: strong class
// prototypes, sparse strokes (low 1-density), low intra-class noise.
func MNISTLike(n, bits int, seed int64) *Dataset {
	return classDataset("MNIST", seed, n, 10, bits, 0.2, 0.04)
}

// FashionMNISTLike models 10-class garment images: denser silhouettes and
// higher intra-class variability than MNIST.
func FashionMNISTLike(n, bits int, seed int64) *Dataset {
	return classDataset("Fashion-MNIST", seed, n, 10, bits, 0.35, 0.08)
}

// CIFARLike models 10-class natural color images: high entropy within the
// class structure (dense patterns, more noise).
func CIFARLike(n, bits int, seed int64) *Dataset {
	return classDataset("CIFAR-10", seed, n, 10, bits, 0.5, 0.12)
}

// ImageNetLike models a many-class natural image corpus (the paper uses
// ImageNet items resized to 64 KB segments): 50 classes, dense, moderate
// noise.
func ImageNetLike(n, bits int, seed int64) *Dataset {
	return classDataset("ImageNet", seed, n, 50, bits, 0.5, 0.08)
}

// VideoLike models CCTV-style frame sequences (the Sherbrooke and Danish
// traffic datasets): a static background with temporally correlated
// foreground churn — consecutive frames differ in only churn fraction of
// bits, giving the stream very strong Hamming structure.
func VideoLike(name string, frames, bits int, churn float64, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: name, Bits: bits}
	cur := make([]float64, bits)
	for j := range cur {
		if r.Float64() < 0.4 {
			cur[j] = 1
		}
	}
	for f := 0; f < frames; f++ {
		d.Items = append(d.Items, append([]float64(nil), cur...))
		d.Labels = append(d.Labels, 0)
		flips := int(churn * float64(bits))
		for i := 0; i < flips; i++ {
			j := r.Intn(bits)
			cur[j] = 1 - cur[j]
		}
	}
	return d
}

// CCTVLike is VideoLike with the paper's CCTV churn characteristics.
func CCTVLike(frames, bits int, seed int64) *Dataset {
	return VideoLike("CCTV", frames, bits, 0.03, seed)
}

// SherbrookeLike is VideoLike tuned for the busier Sherbrooke intersection
// footage.
func SherbrookeLike(frames, bits int, seed int64) *Dataset {
	return VideoLike("Sherbrooke", frames, bits, 0.06, seed)
}

// PubMedLike models the DocWord "PubMed" bag-of-words vectors: very sparse
// term-count patterns drawn from a handful of topic prototypes.
func PubMedLike(n, bits int, seed int64) *Dataset {
	return classDataset("PubMed", seed, n, 8, bits, 0.06, 0.02)
}

// AmazonAccessLike models the Amazon Access Samples log: fixed-width
// records of low-cardinality categorical fields (user group, resource,
// action...). Real access logs are dominated by a modest number of
// recurring access *profiles* — a user group repeatedly touching the same
// resources with the same permissions — so records are generated from
// profile prototypes that fix most fields, with occasional per-field
// substitutions.
func AmazonAccessLike(n, bits int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "Amazon Access", Bits: bits}
	const fields = 8
	const profiles = 10
	fieldBits := bits / fields
	// Each field has a small vocabulary of bit patterns.
	vocab := make([][][]float64, fields)
	for f := range vocab {
		vals := 3 + r.Intn(4)
		vocab[f] = protoSet(r, vals, fieldBits, 0.4)
	}
	// Each profile pins one vocabulary entry per field.
	profile := make([][]int, profiles)
	for p := range profile {
		choice := make([]int, fields)
		for f := range choice {
			choice[f] = r.Intn(len(vocab[f]))
		}
		profile[p] = choice
	}
	for i := 0; i < n; i++ {
		p := r.Intn(profiles)
		row := make([]float64, 0, bits)
		for f := 0; f < fields; f++ {
			v := profile[p][f]
			if r.Float64() < 0.15 { // occasional deviation from the profile
				v = r.Intn(len(vocab[f]))
			}
			row = append(row, vocab[f][v]...)
		}
		for len(row) < bits {
			row = append(row, 0)
		}
		d.Items = append(d.Items, row)
		d.Labels = append(d.Labels, p)
	}
	return d
}

// RoadNetworkLike models the 3D Road Network dataset: coordinate triples
// whose high-order bytes are nearly constant across a region, so records
// share long common prefixes.
func RoadNetworkLike(n, bits int, seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "3D Road Network", Bits: bits}
	const regions = 6
	// Each region fixes the high half of the record; the low half varies.
	regionHigh := protoSet(r, regions, bits/2, 0.5)
	for i := 0; i < n; i++ {
		reg := r.Intn(regions)
		row := append([]float64(nil), regionHigh[reg]...)
		low := make([]float64, bits-len(row))
		for j := range low {
			// Low-order bits vary smoothly: mostly small deltas.
			if r.Float64() < 0.25 {
				low[j] = 1
			}
		}
		row = append(row, low...)
		d.Items = append(d.Items, row)
		d.Labels = append(d.Labels, reg)
	}
	return d
}

// TextualDatasets returns the paper's numerical/textual evaluation sets at
// the given size.
func TextualDatasets(n, bits int, seed int64) []*Dataset {
	return []*Dataset{
		AmazonAccessLike(n, bits, seed),
		RoadNetworkLike(n, bits, seed+1),
		PubMedLike(n, bits, seed+2),
	}
}

// MultimediaDatasets returns the paper's image/video evaluation sets.
func MultimediaDatasets(n, bits int, seed int64) []*Dataset {
	return []*Dataset{
		MNISTLike(n, bits, seed),
		CIFARLike(n, bits, seed+1),
		CCTVLike(n, bits, seed+2),
	}
}

// Mixture concatenates datasets (shallow copies of items) into one, as the
// paper's "mixture of all the real workloads".
func Mixture(name string, sets ...*Dataset) (*Dataset, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("workload: empty mixture")
	}
	bits := sets[0].Bits
	out := &Dataset{Name: name, Bits: bits}
	for _, s := range sets {
		if s.Bits != bits {
			return nil, fmt.Errorf("workload: mixture width mismatch %d vs %d", s.Bits, bits)
		}
		out.Items = append(out.Items, s.Items...)
		out.Labels = append(out.Labels, s.Labels...)
	}
	return out, nil
}

// Shuffled returns a copy of d with items permuted deterministically.
func (d *Dataset) Shuffled(seed int64) *Dataset {
	r := rand.New(rand.NewSource(seed))
	out := &Dataset{Name: d.Name, Bits: d.Bits}
	perm := r.Perm(len(d.Items))
	for _, i := range perm {
		out.Items = append(out.Items, d.Items[i])
		out.Labels = append(out.Labels, d.Labels[i])
	}
	return out
}
