package nvm

import (
	"bytes"
	"errors"
	"testing"
)

func faultDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInjectStuckAtNeverChangesStoredData(t *testing.T) {
	d := faultDevice(t, DefaultConfig(32, 4))
	data := bytes.Repeat([]byte{0xa5}, 32)
	if _, err := d.Write(1, data); err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 32*8; bit += 7 {
		if err := d.InjectStuckAt(1, bit); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("stuck-at injection changed stored data: %x != %x", got, data)
	}
}

func TestStuckCellCorruptsLaterWrite(t *testing.T) {
	d := faultDevice(t, DefaultConfig(32, 4))
	zero := make([]byte, 32)
	if _, err := d.Write(2, zero); err != nil {
		t.Fatal(err)
	}
	// Bit 0 of byte 0 sticks at 0; writing a 1 there must not take.
	if err := d.InjectStuckAt(2, 0); err != nil {
		t.Fatal(err)
	}
	ones := bytes.Repeat([]byte{0xff}, 32)
	res, err := d.Write(2, ones)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultyBits != 1 {
		t.Fatalf("FaultyBits = %d, want 1", res.FaultyBits)
	}
	got, err := d.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xfe {
		t.Fatalf("byte 0 = %#x, want 0xfe (bit 0 stuck at 0)", got[0])
	}
	if !bytes.Equal(got[1:], ones[1:]) {
		t.Fatal("bytes beyond the stuck cell were corrupted")
	}
	if s := d.Stats(); s.FaultyWrites != 1 || s.StuckBits != 1 {
		t.Fatalf("stats = %+v, want FaultyWrites=1 StuckBits=1", s)
	}
}

func TestVerifyWritesReturnsWornOut(t *testing.T) {
	cfg := DefaultConfig(32, 4)
	cfg.VerifyWrites = true
	d := faultDevice(t, cfg)
	if _, err := d.Write(0, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := d.InjectStuckAt(0, 5); err != nil {
		t.Fatal(err)
	}
	// Writing the same value back matches the stuck cell: no error.
	if _, err := d.Write(0, make([]byte, 32)); err != nil {
		t.Fatalf("write agreeing with stuck cell failed: %v", err)
	}
	res, err := d.Write(0, bytes.Repeat([]byte{0xff}, 32))
	if !errors.Is(err, ErrWornOut) {
		t.Fatalf("verify write err = %v, want ErrWornOut", err)
	}
	if res.FaultyBits != 1 {
		t.Fatalf("FaultyBits = %d, want 1", res.FaultyBits)
	}
}

func TestFailSegment(t *testing.T) {
	d := faultDevice(t, DefaultConfig(32, 4))
	data := bytes.Repeat([]byte{0x3c}, 32)
	if _, err := d.Write(3, data); err != nil {
		t.Fatal(err)
	}
	if err := d.FailSegment(3); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(3, make([]byte, 32)); !errors.Is(err, ErrWornOut) {
		t.Fatalf("write to failed segment err = %v, want ErrWornOut", err)
	}
	// Reads still serve the last stored content.
	got, err := d.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failed segment lost its content")
	}
	_, failed, err := d.SegmentFaults(3)
	if err != nil || !failed {
		t.Fatalf("SegmentFaults = (failed=%v, %v), want failed=true", failed, err)
	}
	if s := d.Stats(); s.FailedSegments != 1 || s.FaultyWrites != 1 {
		t.Fatalf("stats = %+v, want FailedSegments=1 FaultyWrites=1", s)
	}
}

func TestWearFaultsFireNearEndurance(t *testing.T) {
	cfg := DefaultConfig(32, 2)
	cfg.EnduranceWrites = 100
	cfg.Fault = FaultConfig{Seed: 7, ProbPerWrite: 0.5, OnsetFraction: 0.5, BitsPerFault: 2}
	d := faultDevice(t, cfg)
	a := make([]byte, 32)
	b := bytes.Repeat([]byte{0xff}, 32)
	for i := 0; i < 200; i++ {
		buf := a
		if i%2 == 1 {
			buf = b
		}
		if _, err := d.Write(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.FaultEvents == 0 || s.StuckBits == 0 {
		t.Fatalf("no wear faults after 2x endurance: %+v", s)
	}
	if s.FaultyWrites == 0 {
		t.Fatal("alternating writes over stuck cells never reported FaultyBits")
	}
	// The untouched segment stays pristine.
	if stuck, failed, err := d.SegmentFaults(1); err != nil || stuck != 0 || failed {
		t.Fatalf("idle segment has faults: stuck=%d failed=%v err=%v", stuck, failed, err)
	}
}

func TestWearFaultsBeforeOnsetNeverFire(t *testing.T) {
	cfg := DefaultConfig(32, 2)
	cfg.EnduranceWrites = 1000
	cfg.Fault = FaultConfig{Seed: 1, ProbPerWrite: 1, OnsetFraction: 0.9}
	d := faultDevice(t, cfg)
	for i := 0; i < 800; i++ { // stays below 0.9 * 1000
		if _, err := d.Write(0, make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if s := d.Stats(); s.FaultEvents != 0 {
		t.Fatalf("faults fired below the onset fraction: %+v", s)
	}
}

func TestWearFaultsDeterministicBySeed(t *testing.T) {
	run := func() Stats {
		cfg := DefaultConfig(32, 2)
		cfg.EnduranceWrites = 50
		cfg.Fault = FaultConfig{Seed: 42, ProbPerWrite: 0.3, OnsetFraction: 0.5}
		d := faultDevice(t, cfg)
		a := make([]byte, 32)
		b := bytes.Repeat([]byte{0x55}, 32)
		for i := 0; i < 120; i++ {
			buf := a
			if i%2 == 1 {
				buf = b
			}
			if _, err := d.Write(i%2, buf); err != nil {
				t.Fatal(err)
			}
		}
		return d.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed, different fault streams:\n%+v\n%+v", s1, s2)
	}
	if s1.FaultEvents == 0 {
		t.Fatal("determinism test exercised no faults")
	}
}

func TestInjectionValidation(t *testing.T) {
	d := faultDevice(t, DefaultConfig(32, 4))
	if err := d.InjectStuckAt(-1, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("InjectStuckAt(-1, 0) = %v, want ErrBadAddress", err)
	}
	if err := d.InjectStuckAt(0, 32*8); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("InjectStuckAt(0, 256) = %v, want ErrBadAddress", err)
	}
	if err := d.FailSegment(4); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("FailSegment(4) = %v, want ErrBadAddress", err)
	}
	if _, _, err := d.SegmentFaults(-2); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("SegmentFaults(-2) = %v, want ErrBadAddress", err)
	}
	bad := DefaultConfig(32, 4)
	bad.Fault.ProbPerWrite = 1.5
	if _, err := NewDevice(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("ProbPerWrite=1.5 accepted: %v", err)
	}
	bad = DefaultConfig(32, 4)
	bad.Fault.OnsetFraction = 1
	bad.Fault.ProbPerWrite = 0.1
	if _, err := NewDevice(bad); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("OnsetFraction=1 accepted: %v", err)
	}
}

// TestWearLevelStatsConsistent pins the fix for the stats bug where
// wear-leveling energy was added to res.EnergyPJ after the cumulative
// accounting (undercounting Stats().EnergyPJ) and the start-gap move charged
// no latency at all.
func TestWearLevelStatsConsistent(t *testing.T) {
	cfg := DefaultConfig(64, 4)
	cfg.WearLevelPeriod = 1 // every write triggers a move
	d := faultDevice(t, cfg)
	var sumEnergy, sumLatency float64
	for i := 0; i < 5; i++ {
		res, err := d.Write(i%4, bytes.Repeat([]byte{byte(0x11 * i)}, 64))
		if err != nil {
			t.Fatal(err)
		}
		if res.WearLevelOps != 1 {
			t.Fatalf("write %d: WearLevelOps = %d, want 1", i, res.WearLevelOps)
		}
		// The move itself costs a base write plus one line per segment line.
		minWL := cfg.WriteBaseLatencyNs + cfg.WriteLineLatencyNs
		if res.LatencyNs < cfg.WriteBaseLatencyNs+minWL {
			t.Fatalf("write %d: LatencyNs = %v does not include the WL move", i, res.LatencyNs)
		}
		sumEnergy += res.EnergyPJ
		sumLatency += res.LatencyNs
	}
	s := d.Stats()
	if s.EnergyPJ != sumEnergy {
		t.Fatalf("Stats().EnergyPJ = %v, sum of WriteResults = %v", s.EnergyPJ, sumEnergy)
	}
	if s.WriteLatencyNs != sumLatency {
		t.Fatalf("Stats().WriteLatencyNs = %v, sum of WriteResults = %v", s.WriteLatencyNs, sumLatency)
	}
}
