package rbw

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"e2nvm/internal/bitvec"
)

func TestNaiveFlipsEverything(t *testing.T) {
	old := []byte{0xaa, 0xbb}
	data := []byte{0xaa, 0xbb} // identical content still costs all bits
	res := Naive{}.Encode(old, nil, data)
	if res.DataFlips != 16 {
		t.Fatalf("Naive flips = %d, want 16", res.DataFlips)
	}
	if !bytes.Equal(res.Stored, data) {
		t.Fatal("Naive must store data verbatim")
	}
}

func TestDCWFlipsAreHamming(t *testing.T) {
	old := []byte{0x0f, 0xf0}
	data := []byte{0x0e, 0xf0}
	res := DCW{}.Encode(old, nil, data)
	if res.DataFlips != 1 {
		t.Fatalf("DCW flips = %d, want 1", res.DataFlips)
	}
	if res.TagFlips != 0 {
		t.Fatalf("DCW tag flips = %d, want 0", res.TagFlips)
	}
}

func TestFNWInvertsWhenBetter(t *testing.T) {
	// Old word is all ones; writing all zeros plainly costs 32 flips, but
	// storing the complement (all ones) costs 0 data flips + 1 flag flip.
	old := []byte{0xff, 0xff, 0xff, 0xff}
	data := []byte{0, 0, 0, 0}
	res := FNW{}.Encode(old, nil, data)
	if res.DataFlips != 0 {
		t.Fatalf("FNW data flips = %d, want 0", res.DataFlips)
	}
	if res.TagFlips != 1 {
		t.Fatalf("FNW tag flips = %d, want 1", res.TagFlips)
	}
	if !bytes.Equal(res.Stored, old) {
		t.Fatal("FNW should have stored the complement")
	}
	if got := (FNW{}).Decode(res.Stored, res.Tags); !bytes.Equal(got, data) {
		t.Fatalf("FNW decode = %x, want %x", got, data)
	}
}

func TestFNWKeepsPlainWhenBetter(t *testing.T) {
	old := []byte{0, 0, 0, 0}
	data := []byte{1, 0, 0, 0}
	res := FNW{}.Encode(old, nil, data)
	if res.DataFlips != 1 || res.TagFlips != 0 {
		t.Fatalf("FNW flips = %d/%d, want 1/0", res.DataFlips, res.TagFlips)
	}
	if !bytes.Equal(res.Stored, data) {
		t.Fatal("FNW should have stored plain data")
	}
}

func TestFNWBoundHalfWordPlusFlag(t *testing.T) {
	// FNW guarantees flips ≤ W/2 + 1 per W-bit word.
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		old := make([]byte, 4)
		data := make([]byte, 4)
		r.Read(old)
		r.Read(data)
		res := FNW{}.Encode(old, nil, data)
		if res.DataFlips+res.TagFlips > 16+1 {
			t.Fatalf("FNW exceeded W/2+1 bound: %d", res.DataFlips+res.TagFlips)
		}
	}
}

func TestMinShiftFindsRotation(t *testing.T) {
	// Old stored content equals the data rotated right by one byte; plain
	// write costs 16 flips, a 1-byte rotation costs only the tag flips.
	data := []byte{0xff, 0x00, 0xff, 0x00, 0x00, 0x00, 0x00, 0x00}
	old := rotateBytes(data, 1)
	res := MinShift{}.Encode(old, nil, data)
	if res.DataFlips != 0 {
		t.Fatalf("MinShift data flips = %d, want 0", res.DataFlips)
	}
	if got := (MinShift{}).Decode(res.Stored, res.Tags); !bytes.Equal(got, data) {
		t.Fatalf("MinShift decode = %x, want %x", got, data)
	}
}

func TestCaptoprilAtLeastAsGoodAsFNWPerByte(t *testing.T) {
	// With 1-byte chunks, Captopril can only do better than or equal to
	// the same data under byte-granularity hamming on each chunk.
	r := rand.New(rand.NewSource(9))
	for iter := 0; iter < 100; iter++ {
		old := make([]byte, 16)
		data := make([]byte, 16)
		r.Read(old)
		r.Read(data)
		res := Captopril{}.Encode(old, nil, data)
		plain := bitvec.HammingBytes(old, data)
		if res.DataFlips > plain {
			t.Fatalf("Captopril data flips %d > DCW %d", res.DataFlips, plain)
		}
		if got := (Captopril{}).Decode(res.Stored, res.Tags); !bytes.Equal(got, data) {
			t.Fatal("Captopril decode mismatch")
		}
	}
}

func TestTagBits(t *testing.T) {
	if got := (FNW{}).TagBits(256); got != 64 {
		t.Fatalf("FNW TagBits(256) = %d, want 64", got)
	}
	if got := (Captopril{}).TagBits(256); got != 256 {
		t.Fatalf("Captopril TagBits(256) = %d, want 256", got)
	}
	if got := (MinShift{}).TagBits(256); got != 64 {
		t.Fatalf("MinShift TagBits(256) = %d, want 64 (32 words x 2 bits)", got)
	}
	if got := (DCW{}).TagBits(256); got != 0 {
		t.Fatalf("DCW TagBits = %d, want 0", got)
	}
}

// Property: every scheme round-trips — Decode(Encode(data)) == data — and
// its claimed DataFlips equal the true Hamming distance between old and new
// stored representations.
func TestSchemesRoundTripAndHonestFlips(t *testing.T) {
	schemes := append(All(), Naive{})
	f := func(seed int64, szByte uint8) bool {
		n := (int(szByte)%8 + 1) * 8 // 8..64 bytes
		r := rand.New(rand.NewSource(seed))
		oldStored := make([]byte, n)
		r.Read(oldStored)
		data := make([]byte, n)
		r.Read(data)
		for _, s := range schemes {
			res := s.Encode(oldStored, nil, data)
			if got := s.Decode(res.Stored, res.Tags); !bytes.Equal(got, data) {
				return false
			}
			if _, isNaive := s.(Naive); isNaive {
				continue // Naive deliberately over-reports flips
			}
			if res.DataFlips != bitvec.HammingBytes(oldStored, res.Stored) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: chained writes through a scheme stay decodable when the tag
// state is threaded forward.
func TestSchemesChainedWrites(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(11))
			stored := make([]byte, 32)
			var tags []byte
			for step := 0; step < 50; step++ {
				data := make([]byte, 32)
				r.Read(data)
				res := s.Encode(stored, tags, data)
				stored, tags = res.Stored, res.Tags
				if got := s.Decode(stored, tags); !bytes.Equal(got, data) {
					t.Fatalf("step %d: decode mismatch", step)
				}
			}
		})
	}
}

// Property: optimized schemes never do worse than DCW plus their tag
// overhead budget would allow; in particular FNW total cost ≤ DCW cost + #words.
func TestFNWNeverMuchWorseThanDCW(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		old := make([]byte, 32)
		data := make([]byte, 32)
		r.Read(old)
		r.Read(data)
		dcw := DCW{}.Encode(old, nil, data).DataFlips
		res := FNW{}.Encode(old, nil, data)
		return res.DataFlips+res.TagFlips <= dcw
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRotateBytes(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	if got := rotateBytes(b, 1); !bytes.Equal(got, []byte{4, 1, 2, 3}) {
		t.Fatalf("rotate 1 = %v", got)
	}
	if got := rotateBytes(rotateBytes(b, 3), -3); !bytes.Equal(got, b) {
		t.Fatalf("rotate inverse = %v", got)
	}
	if got := rotateBytes(nil, 5); len(got) != 0 {
		t.Fatal("rotate of empty should be empty")
	}
}

func TestAllNames(t *testing.T) {
	want := map[string]bool{"DCW": true, "MinShift": true, "FNW": true, "Captopril": true}
	for _, s := range All() {
		if !want[s.Name()] {
			t.Fatalf("unexpected scheme %q", s.Name())
		}
		delete(want, s.Name())
	}
	if len(want) != 0 {
		t.Fatalf("missing schemes: %v", want)
	}
}

func BenchmarkFNWEncode256B(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	old := make([]byte, 256)
	data := make([]byte, 256)
	r.Read(old)
	r.Read(data)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FNW{}.Encode(old, nil, data)
	}
}
