// Package lockdiscipline is a golden fixture for the lockdiscipline
// analyzer. Convention under test: fields declared after mu are guarded by
// it; fields before mu are set once at construction and free to read.
package lockdiscipline

import "sync"

// Counter follows the repo layout: immutable config above mu, mutable
// state below it.
type Counter struct {
	name string // immutable after construction

	mu sync.Mutex
	n  int
	hi int
}

// Name reads an unguarded field; no lock needed.
func (c *Counter) Name() string { return c.name }

// Add is the conforming pattern: lock with deferred unlock.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
	if c.n > c.hi {
		c.hi = c.n
	}
}

// Peek reads guarded state without taking the lock — a data race.
func (c *Counter) Peek() int {
	return c.n // want "Peek accesses mu-guarded field c.n without c.mu.Lock"
}

// Leak locks but returns on the early path while still holding mu.
func (c *Counter) Leak(d int) int {
	c.mu.Lock()
	if d == 0 {
		return c.n // want "Leak returns while c.mu is held"
	}
	c.n += d
	c.mu.Unlock()
	return c.n
}

// Balanced unlocks on both branches before returning; no diagnostic.
func (c *Counter) Balanced(d int) int {
	c.mu.Lock()
	if d == 0 {
		c.mu.Unlock()
		return 0
	}
	c.n += d
	v := c.n
	c.mu.Unlock()
	return v
}

// NLocked is a caller-holds-the-lock helper; the Locked suffix exempts it.
func (c *Counter) NLocked() int { return c.n }

// reset is unexported; internal helpers manage locking at their call sites.
func (c *Counter) reset() { c.n = 0 }

// Snapshot demonstrates the escape hatch for a documented exception.
func (c *Counter) Snapshot() int {
	return c.n // lint:allow lockdiscipline — fixture-only demonstration
}
