// Package lockdiscipline enforces the repo's mutex convention on structs
// that embed a `mu sync.Mutex` / `sync.RWMutex` field (nine of them:
// nvm.Device, kvstore.Store, core.Model, core.Manager, dap.Pool,
// energy.Profiler, txn.Manager, index.FreeList, ...).
//
// Convention: every sibling field declared AFTER the mu field is guarded
// by mu; fields declared before it are immutable after construction (or
// independently synchronized) and may be read freely. The analyzer
// enforces two rules:
//
//  1. an exported method that reads or writes a guarded field must take
//     the lock: it must contain at least one recv.mu.Lock() / RLock()
//     call (this caught the unlocked dap.Pool.K and core.Model.Padder
//     reads racing Reset/SetPadder);
//  2. a method that locks mu without defer must not return while the lock
//     is held — every return path needs a preceding Unlock.
//
// False positives (e.g. a method documented as requiring the caller to
// hold the lock) use the `// lint:allow lockdiscipline` escape hatch;
// unexported *Locked helpers are excluded from rule 1 by convention.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"e2nvm/internal/analysis"
)

// Analyzer checks mutex discipline around mu-guarded struct fields.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "fields declared after a struct's mu mutex must only be accessed " +
		"under mu in exported methods, and no return path may leak a held lock",
	Run: run,
}

// guardInfo describes one mu-guarded struct.
type guardInfo struct {
	muField string          // name of the mutex field ("mu")
	guarded map[string]bool // sibling fields declared after the mutex
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				continue
			}
			recv, ok := pass.TypesInfo.Defs[names[0]].(*types.Var)
			if !ok {
				continue
			}
			gi := guards[namedTypeName(recv.Type())]
			if gi == nil {
				continue
			}
			checkGuardedAccess(pass, fd, recv, gi)
			checkReturnPaths(pass, fd, recv, gi)
		}
	}
	return nil
}

// collectGuards finds struct types with a mutex field named mu and records
// which sibling fields it guards (everything declared after it).
func collectGuards(pass *analysis.Pass) map[*types.TypeName]*guardInfo {
	out := map[*types.TypeName]*guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			gi := &guardInfo{guarded: map[string]bool{}}
			for _, field := range st.Fields.List {
				isMutex := isSyncMutex(pass, field.Type)
				for _, name := range field.Names {
					switch {
					case gi.muField == "" && isMutex && name.Name == "mu":
						gi.muField = name.Name
					case gi.muField != "" && !isMutex:
						gi.guarded[name.Name] = true
					}
				}
			}
			if gi.muField != "" && len(gi.guarded) > 0 {
				out[tn] = gi
			}
			return true
		})
	}
	return out
}

func isSyncMutex(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// namedTypeName unwraps pointers to the defining TypeName, or nil.
func namedTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// checkGuardedAccess implements rule 1: exported methods touching guarded
// fields must contain a lock acquisition on recv.mu.
func checkGuardedAccess(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Var, gi *guardInfo) {
	if !fd.Name.IsExported() || strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	if containsLockCall(pass, fd.Body, recv, gi.muField) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return true
		}
		if gi.guarded[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"%s accesses mu-guarded field %s.%s without %s.%s.Lock (field is declared after mu; lock it or move it above mu if it is immutable)",
				fd.Name.Name, id.Name, sel.Sel.Name, id.Name, gi.muField)
		}
		return true
	})
}

// containsLockCall reports whether body contains recv.mu.Lock/RLock.
func containsLockCall(pass *analysis.Pass, body *ast.BlockStmt, recv *types.Var, muField string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if kind := lockCallKind(pass, call, recv, muField); kind == lockAcquire || kind == rlockAcquire {
				found = true
			}
		}
		return true
	})
	return found
}

type lockKind int

const (
	notLock lockKind = iota
	lockAcquire
	rlockAcquire
	lockRelease
	rlockRelease
)

// lockCallKind classifies call as an operation on recv.<muField>.
func lockCallKind(pass *analysis.Pass, call *ast.CallExpr, recv *types.Var, muField string) lockKind {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return notLock
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != muField {
		return notLock
	}
	id, ok := inner.X.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != recv {
		return notLock
	}
	switch sel.Sel.Name {
	case "Lock":
		return lockAcquire
	case "RLock":
		return rlockAcquire
	case "Unlock":
		return lockRelease
	case "RUnlock":
		return rlockRelease
	}
	return notLock
}

// lockState tracks whether recv.mu is held on the current path.
type lockState struct {
	held     bool // mu (or its read half) currently locked on this path
	deferred bool // a defer recv.mu.Unlock() covers the rest of the function
}

// checkReturnPaths implements rule 2 with a conservative structural walk:
// it simulates Lock/Unlock/defer-Unlock along statement paths and reports
// any return reached while the lock is held without a covering defer.
// Branches are walked independently; a branch that ends in return does not
// contribute to the fall-through state.
func checkReturnPaths(pass *analysis.Pass, fd *ast.FuncDecl, recv *types.Var, gi *guardInfo) {
	var walkStmts func(stmts []ast.Stmt, st lockState) lockState
	var walkStmt func(s ast.Stmt, st lockState) lockState

	// walkExpr descends into function literals (e.g. goroutine bodies),
	// which start with their own unlocked state.
	walkExpr := func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				walkStmts(fl.Body.List, lockState{})
				return false
			}
			return true
		})
	}

	walkStmt = func(s ast.Stmt, st lockState) lockState {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				switch lockCallKind(pass, call, recv, gi.muField) {
				case lockAcquire, rlockAcquire:
					st.held = true
				case lockRelease, rlockRelease:
					st.held = false
				}
			}
			walkExpr(s.X)
		case *ast.DeferStmt:
			switch lockCallKind(pass, s.Call, recv, gi.muField) {
			case lockRelease, rlockRelease:
				st.deferred = true
			default:
				walkExpr(s.Call.Fun)
				for _, a := range s.Call.Args {
					walkExpr(a)
				}
			}
		case *ast.GoStmt:
			walkExpr(s.Call.Fun)
			for _, a := range s.Call.Args {
				walkExpr(a)
			}
		case *ast.ReturnStmt:
			if st.held && !st.deferred {
				pass.Reportf(s.Pos(),
					"%s returns while %s.%s is held; unlock before returning or use defer %s.%s.Unlock()",
					fd.Name.Name, recv.Name(), gi.muField, recv.Name(), gi.muField)
			}
			for _, r := range s.Results {
				walkExpr(r)
			}
		case *ast.BlockStmt:
			st = walkStmts(s.List, st)
		case *ast.IfStmt:
			if s.Init != nil {
				st = walkStmt(s.Init, st)
			}
			walkExpr(s.Cond)
			bodyExit := walkStmts(s.Body.List, st)
			if s.Else != nil {
				elseExit := walkStmt(s.Else, st)
				st = mergeBranches(s.Body.List, bodyExit, elseStmts(s.Else), elseExit)
			} else if !terminates(s.Body.List) {
				// Fall-through merges with the branch exit conservatively.
				st.held = st.held || bodyExit.held
				st.deferred = st.deferred || bodyExit.deferred
			}
		case *ast.ForStmt:
			if s.Init != nil {
				st = walkStmt(s.Init, st)
			}
			walkExpr(s.Cond)
			walkStmts(s.Body.List, st)
		case *ast.RangeStmt:
			walkExpr(s.X)
			walkStmts(s.Body.List, st)
		case *ast.SwitchStmt:
			if s.Init != nil {
				st = walkStmt(s.Init, st)
			}
			walkExpr(s.Tag)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, st)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, st)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkStmts(cc.Body, st)
				}
			}
		case *ast.LabeledStmt:
			st = walkStmt(s.Stmt, st)
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				walkExpr(r)
			}
		}
		return st
	}

	walkStmts = func(stmts []ast.Stmt, st lockState) lockState {
		for _, s := range stmts {
			st = walkStmt(s, st)
		}
		return st
	}

	walkStmts(fd.Body.List, lockState{})
}

// elseStmts flattens an else arm into its statement list.
func elseStmts(s ast.Stmt) []ast.Stmt {
	if b, ok := s.(*ast.BlockStmt); ok {
		return b.List
	}
	return []ast.Stmt{s}
}

// mergeBranches combines the exit states of an if/else pair: a branch that
// terminates (ends in return) does not flow out.
func mergeBranches(body []ast.Stmt, bodyExit lockState, els []ast.Stmt, elseExit lockState) lockState {
	bt, et := terminates(body), terminates(els)
	switch {
	case bt && et:
		return lockState{}
	case bt:
		return elseExit
	case et:
		return bodyExit
	default:
		return lockState{
			held:     bodyExit.held || elseExit.held,
			deferred: bodyExit.deferred || elseExit.deferred,
		}
	}
}

// terminates reports whether a statement list ends in a return (the only
// terminator these packages use on lock paths).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
