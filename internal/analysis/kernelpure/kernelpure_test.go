package kernelpure

import (
	"testing"

	"e2nvm/internal/analysis/analysistest"
)

func TestKernelPure(t *testing.T) {
	analysistest.RunProgram(t, "../testdata", Analyzer, "kernelpure")
}
