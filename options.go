package e2nvm

import (
	"bytes"
	"fmt"
	"io"

	"e2nvm/internal/batch"
	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
)

// SaveModel serializes the store's trained model (encoder weights,
// centroids, padding state) so a future Open can skip training by passing
// the stream via OpenWithModel. On a sharded store the first shard's model
// is saved; OpenWithModel restores the same stream into every shard.
func (s *Store) SaveModel(w io.Writer) error {
	return s.shards[0].Model().Save(w)
}

// OpenWithModel is Open, but restores a previously saved model instead of
// training one. The model's input width must match the configured segment
// size; each shard's dynamic address pool is rebuilt by predicting its
// device zone's seeded contents. When Config.Shards > 1, every shard loads
// its own copy of the same model.
func OpenWithModel(cfg Config, model io.Reader) (*Store, error) {
	cfg = cfg.withDefaults()
	data, err := io.ReadAll(model)
	if err != nil {
		return nil, err
	}
	// Validate once before fanning out, so a bad stream fails fast with one
	// error instead of Shards copies of it.
	m, err := core.Load(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if m.InputBits() != cfg.SegmentSize*8 {
		return nil, fmt.Errorf("%w: model input %d bits, want %d for %d-byte segments",
			ErrConfig, m.InputBits(), cfg.SegmentSize*8, cfg.SegmentSize)
	}
	return openShards(cfg, func(i int, dev *nvm.Device, keyTemp func(uint64) dap.Temp) (*kvstore.Store, error) {
		sm := m
		if i > 0 {
			// Each shard owns a mutable model (retrain replaces it
			// per-shard), so shards past the first deserialize their own.
			var lerr error
			if sm, lerr = core.Load(bytes.NewReader(data)); lerr != nil {
				return nil, lerr
			}
		}
		return kvstore.OpenWith(dev, sm, cfg.storeOptions(cfg.placement(), keyTemp))
	})
}

// Batcher groups small writes into segment-sized batch records before they
// reach the store — the paper's §4.1.4 optimization that shrinks both the
// address-pool footprint and the padded fraction of each model input. The
// batcher is not safe for concurrent use.
type Batcher struct {
	inner *batch.Batcher
}

// NewBatcher creates a batcher whose sealed batch records fill the store's
// maximum value size. gcFrac (0 = default 0.5) is the live fraction below
// which a sealed batch is compacted.
func (s *Store) NewBatcher(gcFrac float64) (*Batcher, error) {
	b, err := batch.New(s, s.MaxValue(), gcFrac)
	if err != nil {
		return nil, err
	}
	return &Batcher{inner: b}, nil
}

// Put stores a small value under key, buffering it until a batch fills.
func (b *Batcher) Put(key uint64, value []byte) error { return b.inner.Put(key, value) }

// Get returns the value stored under key.
func (b *Batcher) Get(key uint64) ([]byte, bool, error) { return b.inner.Get(key) }

// Delete removes key, compacting its batch when it becomes sparse.
func (b *Batcher) Delete(key uint64) (bool, error) { return b.inner.Delete(key) }

// Flush seals the open buffer into a batch record.
func (b *Batcher) Flush() error { return b.inner.Flush() }

// Len returns the number of live user keys.
func (b *Batcher) Len() int { return b.inner.Len() }

// Batches returns the number of sealed batch records alive in the store.
func (b *Batcher) Batches() int { return b.inner.Batches() }
