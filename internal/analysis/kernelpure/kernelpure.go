// Package kernelpure defines a whole-program Analyzer that keeps the
// inference kernel deterministic and self-contained. A function marked
// with a `// lint:kernelpure` doc comment is a root; everything it
// transitively reaches must be pure in the kernel sense:
//
//   - no map iteration (range order is randomized per run — a kernel that
//     ranges a map gives different segment placements on identical input);
//   - no writes to package-level state (a kernel that mutates globals
//     cannot be called concurrently or replayed);
//   - no float == or != (bit-exact float comparison silently diverges
//     between the float reference path and the integer bit-native path);
//   - no heap allocation and no calls through unresolvable function
//     values — the same contract as hotpathalloc, re-run here over the
//     kernelpure root set so the purity guarantee is self-contained.
//
// The alloc scan honors hotpathalloc's cold-exit rule (a block ending in
// panic or an error return is off the measured path). `lint:allow
// kernelpure` on a site suppresses one finding; on a call site it prunes
// the traversal edge.
package kernelpure

import (
	"go/ast"
	"go/token"
	"go/types"

	"e2nvm/internal/analysis"
	"e2nvm/internal/analysis/hotpathalloc"
)

// Marker is the doc-comment marker that makes a function a kernel root.
const Marker = "lint:kernelpure"

// Analyzer flags purity violations reachable from lint:kernelpure roots.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "kernelpure",
	Doc: "functions marked lint:kernelpure, and everything they transitively call, " +
		"must not iterate maps, write package-level state, compare floats with == or !=, " +
		"or heap-allocate; suppress with lint:allow kernelpure",
	Run: run,
}

func run(pass *analysis.ProgramPass) error {
	g := pass.Graph
	var roots []*analysis.FuncNode
	for _, n := range g.Nodes() {
		if n.DocContains(Marker) {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return nil
	}
	reach := g.Reach(roots, func(_ *analysis.FuncNode, c analysis.Call) bool {
		return pass.Allowed(c.Site)
	})
	for _, n := range g.Nodes() {
		step, ok := reach[n]
		if !ok {
			continue
		}
		// The allocation-free half of the contract is hotpathalloc's scan,
		// re-rooted here (this also flags calls through function values).
		hotpathalloc.CheckFunc(pass, n, step.Root, reach, "kernel")
		checkPurity(pass, n, step.Root, reach)
	}
	return nil
}

// checkPurity scans one reached function's own body for map iteration,
// package-level state writes, and float equality.
func checkPurity(pass *analysis.ProgramPass, n, root *analysis.FuncNode, reach map[*analysis.FuncNode]analysis.ReachStep) {
	flag := func(site token.Pos, what string) {
		if pass.Allowed(site) {
			return
		}
		if n == root {
			pass.Reportf(site, "%s on kernel %s", what, root.Name())
			return
		}
		pass.Reportf(root.Pos(), "kernel %s reaches %s in %s (%s) at %s",
			root.Name(), what, n.Name(), analysis.PathTo(reach, n), pass.Fset.Position(site))
	}

	info := n.Pkg.TypesInfo
	n.InspectOwn(func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.RangeStmt:
			if t := info.Types[x.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					flag(x.Pos(), "map iteration (randomized order breaks determinism)")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if v := packageLevelTarget(info, lhs); v != nil {
					flag(lhs.Pos(), "package-level state write (to "+v.Name()+")")
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(info, x.X); v != nil {
				flag(x.Pos(), "package-level state write (to "+v.Name()+")")
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if isFloat(info.Types[x.X].Type) || isFloat(info.Types[x.Y].Type) {
					flag(x.Pos(), "float equality comparison ("+x.Op.String()+")")
				}
			}
		}
		return true
	})
}

// packageLevelTarget resolves an assignment target to the package-level
// variable it mutates, if any: the base identifier of any chain of index,
// selector, and star expressions (g.cache[i] = v writes global g).
func packageLevelTarget(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A qualified reference (pkg.Var) resolves through Sel; a field
			// selection keeps unwrapping through the base.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					e = x.Sel
					continue
				}
			}
			e = x.X
		case *ast.StarExpr:
			// Writing through a dereferenced pointer: the pointer may be a
			// global, but the pointee is not provably package state. Stop at
			// the identifier and let the Ident case decide.
			e = x.X
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			if !ok || v.Pkg() == nil {
				return nil
			}
			if v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isFloat reports whether t is a floating-point or complex type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
