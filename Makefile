GO ?= go

.PHONY: all build test race stress lint vet bench fault

all: build lint test

build:
	$(GO) build ./...

# Repo-specific static analysis: per-function analyzers (lockdiscipline,
# seededrand, floateq, nopanic) plus the inter-procedural ones
# (hotpathalloc, errflow, deepdeterminism) — see DESIGN.md §8.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/e2nvm-lint ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Concurrency stress: the multi-goroutine facade hammer (sharded and
# unsharded) plus the kvstore/shard concurrency suites, under the race
# detector.
stress:
	$(GO) test -race -run 'TestConcurrentStress|TestRetrainConcurrentPut|TestScanReentrant' \
		. ./internal/kvstore ./internal/shard

# Fault-injection pipeline under the race detector: the nvm fault model,
# kvstore detect/retry/retire/scrub tests, the crash matrix, the txn worn-
# slot tests, pool retirement, and the record-codec fuzz seeds (see
# DESIGN.md §9).
fault:
	$(GO) test -race -run 'Fault|Worn|Retire|Scrub|Degrad|Corrupt|CrashMatrix|Fuzz' \
		./internal/nvm ./internal/kvstore ./internal/txn ./internal/dap ./internal/experiments .
	$(GO) test -race -run=NONE -fuzz FuzzRecordRoundTrip -fuzztime 10s ./internal/kvstore

# Regenerate the committed micro-benchmark baseline (Put/Get/GetInto/Delete
# ns/op, B/op, allocs/op plus bit-flip counters, and the concurrent
# shards×cpu throughput sweep).
bench:
	$(GO) run ./cmd/e2nvm-bench -kvbench -out BENCH_PR5.json
