package shard

import (
	"errors"
	"sync"
)

// ErrBadBatch reports batch slices whose lengths do not line up.
var ErrBadBatch = errors.New("shard: batch slice lengths differ")

// batchScratch holds one batch fan-out's grouping buffers: the items
// reordered shard-contiguously (counting sort by shard), the scatter map
// back to caller order, and per-item result staging.
type batchScratch struct {
	keys []uint64
	vals [][]byte
	dsts [][]byte
	oks  []bool
	errs []error
	pos  []int // pos[slot] = caller index staged at contiguous slot
	off  []int // per-shard slot offsets, len N+1
}

// batchPool recycles batchScratch values across batches so the fan-out
// adds no steady-state allocations on top of the per-shard batch paths.
var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n) // lint:allow hotpathalloc — scratch grows once to the largest batch
	}
	return s[:n]
}

func growByteSlices(s [][]byte, n int) [][]byte {
	if cap(s) < n {
		return make([][]byte, n) // lint:allow hotpathalloc — scratch grows once to the largest batch
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n) // lint:allow hotpathalloc — scratch grows once to the largest batch
	}
	return s[:n]
}

func growErrs(s []error, n int) []error {
	if cap(s) < n {
		return make([]error, n) // lint:allow hotpathalloc — scratch grows once to the largest batch
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n) // lint:allow hotpathalloc — scratch grows once to the largest batch
	}
	return s[:n]
}

// groupByShard counting-sorts the keys into shard-contiguous slots of b:
// after it returns, shard sh owns slots [start(sh), b.off[sh]) where
// start(0) = 0 and start(sh) = b.off[sh-1], and b.pos maps each slot back
// to its caller index. Zero steady-state allocations.
//
// lint:hotpath
func (r *Router) groupByShard(b *batchScratch, keys []uint64) {
	n, shards := len(keys), len(r.stores)
	b.off = growInts(b.off, shards+1)
	for i := range b.off {
		b.off[i] = 0
	}
	for _, k := range keys {
		b.off[r.Of(k)+1]++
	}
	for sh := 0; sh < shards; sh++ {
		b.off[sh+1] += b.off[sh]
	}
	b.keys = growU64(b.keys, n)
	b.pos = growInts(b.pos, n)
	// Fill using b.off[sh] as shard sh's cursor; afterwards b.off[sh] has
	// advanced by count(sh), i.e. it holds end(sh) = start(sh+1).
	for i, k := range keys {
		sh := r.Of(k)
		slot := b.off[sh]
		b.off[sh]++
		b.keys[slot] = k
		b.pos[slot] = i
	}
}

// release clears the scratch's caller-data references (so the pool never
// pins values or buffers across batches) and returns it to the pool.
func (b *batchScratch) release(n int) {
	for i := 0; i < n && i < len(b.vals); i++ {
		b.vals[i] = nil
	}
	for i := 0; i < n && i < len(b.dsts); i++ {
		b.dsts[i] = nil
	}
	for i := 0; i < n && i < len(b.errs); i++ {
		b.errs[i] = nil
	}
	batchPool.Put(b)
}

// PutBatch routes a batch of writes, grouping items per shard so each
// shard's store is entered exactly once per batch (one lock acquisition
// per shard), and within each shard inference runs on the kernel's
// blocked multi-sample path. Per-item outcomes land in errs (when
// non-nil) in caller order; items apply in caller order within each
// shard, and the returned error is the first per-item failure by caller
// index. Zero steady-state allocations on top of the per-shard path.
//
// lint:hotpath
func (r *Router) PutBatch(keys []uint64, values [][]byte, errs []error) error {
	if len(values) != len(keys) || (errs != nil && len(errs) != len(keys)) {
		return ErrBadBatch
	}
	if len(r.stores) == 1 {
		return r.stores[0].PutBatch(keys, values, errs)
	}
	n := len(keys)
	b := batchPool.Get().(*batchScratch)
	r.groupByShard(b, keys)
	b.vals = growByteSlices(b.vals, n)
	b.errs = growErrs(b.errs, n)
	for slot, i := range b.pos[:n] {
		b.vals[slot] = values[i]
	}
	start := 0
	for sh := range r.stores {
		end := b.off[sh]
		if end > start {
			// Per-item outcomes land in b.errs; the per-shard return value
			// is redundant with them, so the caller-order scan below
			// rebuilds the first failure.
			_ = r.stores[sh].PutBatch(b.keys[start:end], b.vals[start:end], b.errs[start:end])
		}
		start = end
	}
	firstIdx, firstErr := -1, error(nil)
	for slot := 0; slot < n; slot++ {
		if e := b.errs[slot]; e != nil {
			if i := b.pos[slot]; firstIdx < 0 || i < firstIdx {
				firstIdx, firstErr = i, e
			}
		}
		if errs != nil {
			errs[b.pos[slot]] = b.errs[slot]
		}
	}
	b.release(n)
	return firstErr
}

// GetBatch routes a batch of reads, grouping keys per shard so each
// shard's store is entered exactly once per batch. Value i lands in
// dsts[i]'s backing array (grown only when too small) with liveness in
// oks[i]; errs, when non-nil, receives per-item read errors. The returned
// error is the first per-item failure by caller index. Zero steady-state
// allocations on top of the per-shard path.
//
// lint:hotpath
func (r *Router) GetBatch(keys []uint64, dsts [][]byte, oks []bool, errs []error) error {
	if len(dsts) != len(keys) || len(oks) != len(keys) || (errs != nil && len(errs) != len(keys)) {
		return ErrBadBatch
	}
	if len(r.stores) == 1 {
		return r.stores[0].GetBatch(keys, dsts, oks, errs)
	}
	n := len(keys)
	b := batchPool.Get().(*batchScratch)
	r.groupByShard(b, keys)
	b.dsts = growByteSlices(b.dsts, n)
	b.oks = growBools(b.oks, n)
	b.errs = growErrs(b.errs, n)
	for slot, i := range b.pos[:n] {
		b.dsts[slot] = dsts[i] // carry caller buffers through so they get reused
	}
	start := 0
	for sh := range r.stores {
		end := b.off[sh]
		if end > start {
			_ = r.stores[sh].GetBatch(b.keys[start:end], b.dsts[start:end], b.oks[start:end], b.errs[start:end])
		}
		start = end
	}
	firstIdx, firstErr := -1, error(nil)
	for slot := 0; slot < n; slot++ {
		i := b.pos[slot]
		dsts[i] = b.dsts[slot]
		oks[i] = b.oks[slot]
		if e := b.errs[slot]; e != nil {
			if firstIdx < 0 || i < firstIdx {
				firstIdx, firstErr = i, e
			}
		}
		if errs != nil {
			errs[i] = b.errs[slot]
		}
	}
	b.release(n)
	return firstErr
}
