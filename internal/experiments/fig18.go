package experiments

import (
	"fmt"
	"time"

	"e2nvm/internal/energy"
	"e2nvm/internal/stats"
	"e2nvm/internal/vae"
	"e2nvm/internal/workload"
)

func init() { register("fig18", Fig18) }

// Fig18 reproduces Figure 18: the retraining cost per epoch — latency and
// energy — as the number of indexed memory segments grows (ImageNet-like
// data). Both grow roughly linearly in the segment count; the paper uses
// this curve to set the retraining low-water mark.
func Fig18(cfg RunConfig) (*Result, error) {
	const segSize = 32
	bits := segSize * 8
	counts := []int{
		cfg.scaleInt(500, 100),
		cfg.scaleInt(1000, 200),
		cfg.scaleInt(2000, 400),
		cfg.scaleInt(5000, 800),
	}
	table := stats.NewTable("segments", "wall_ms/epoch", "modeled_energy_uJ/epoch")
	for _, n := range counts {
		ds := workload.ImageNetLike(n, bits, cfg.Seed+int64(n))
		m, err := vae.New(vae.Config{InputDim: bits, LatentDim: 10, HiddenDim: 48, Beta: 0.1, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		const epochs = 3
		t0 := time.Now() // lint:allow deepdeterminism — Figure 18 reports wall-clock epoch time
		if _, err := m.Fit(ds.Items, vae.FitOptions{Epochs: epochs, BatchSize: 32}); err != nil {
			return nil, err
		}
		perEpochMs := float64(time.Since(t0).Microseconds()) / 1e3 / epochs // lint:allow deepdeterminism — Figure 18 reports wall-clock epoch time
		// Modeled energy: forward+backward ≈ 3× the predict FLOPs per
		// sample per epoch.
		prof := energy.New()
		prof.AddCompute(3 * m.FLOPsPerPredict() * float64(n))
		table.AddRow(n, perEpochMs, prof.EnergyPJ()/1e6)
	}
	return &Result{
		ID:    "fig18",
		Title: "Retraining latency and energy per epoch vs number of segments (ImageNet-like)",
		Table: table,
		Notes: []string{
			fmt.Sprintf("segment size %d B; both columns grow ~linearly with the segment count", segSize),
		},
	}, nil
}
