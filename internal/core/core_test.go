package core

import (
	"errors"
	"math/rand"
	"testing"

	"e2nvm/internal/bitvec"
	"e2nvm/internal/padding"
)

// mustP unwraps a predict result; test inputs are well-formed, so an error
// is a test bug (the panic fails the test, goroutine-safe unlike t.Fatal).
func mustP(c int, err error) int {
	if err != nil {
		panic(err)
	}
	return c
}

// segmentSet plants k clusters of segment bit-images.
func segmentSet(r *rand.Rand, n, k, bits int, noise float64) ([][]float64, []int) {
	protos := make([][]float64, k)
	for c := range protos {
		p := make([]float64, bits)
		for j := range p {
			if r.Intn(2) == 1 {
				p[j] = 1
			}
		}
		protos[c] = p
	}
	data := make([][]float64, n)
	labels := make([]int, n)
	for i := range data {
		c := r.Intn(k)
		labels[i] = c
		row := append([]float64(nil), protos[c]...)
		for j := range row {
			if r.Float64() < noise {
				row[j] = 1 - row[j]
			}
		}
		data[i] = row
	}
	return data, labels
}

func quickCfg(bits, k int) Config {
	return Config{
		InputBits: bits, K: k, HiddenDim: 32, LatentDim: 6,
		Epochs: 8, JointEpochs: 2, BatchSize: 16, Seed: 1,
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, quickCfg(16, 2)); err == nil {
		t.Fatal("expected error on empty data")
	}
	if _, err := Train([][]float64{{1, 0}}, Config{InputBits: 0}); err == nil {
		t.Fatal("expected error for InputBits 0")
	}
	if _, err := Train([][]float64{{1, 0, 1}}, quickCfg(16, 2)); err == nil {
		t.Fatal("expected error for wrong row width")
	}
	if _, err := Train([][]float64{{1, 0}}, Config{InputBits: 2, K: -1}); err == nil {
		t.Fatal("expected error for negative K")
	}
}

func TestTrainAndPredictGroupsSimilarContent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	data, labels := segmentSet(r, 300, 3, 48, 0.03)
	m, err := Train(data, quickCfg(48, 3))
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 3 {
		t.Fatalf("K = %d, want 3", m.K())
	}
	// Purity of predictions vs planted labels.
	counts := make([]map[int]int, 3)
	for i := range counts {
		counts[i] = map[int]int{}
	}
	for i, x := range data {
		counts[mustP(m.Predict(x))][labels[i]]++
	}
	pure, total := 0, 0
	for _, cm := range counts {
		best := 0
		for _, n := range cm {
			total += n
			if n > best {
				best = n
			}
		}
		pure += best
	}
	if p := float64(pure) / float64(total); p < 0.9 {
		t.Fatalf("cluster purity %.3f < 0.9", p)
	}
}

func TestAutoKElbow(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data, _ := segmentSet(r, 240, 4, 32, 0.02)
	cfg := quickCfg(32, 0) // auto-K
	cfg.ElbowRange = []int{2, 3, 4, 5, 6, 8}
	m, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.SSECurve() == nil {
		t.Fatal("SSECurve should be recorded for auto-K")
	}
	if m.K() < 2 || m.K() > 8 {
		t.Fatalf("auto K = %d outside scanned range", m.K())
	}
}

func TestHistoryRecorded(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	data, _ := segmentSet(r, 100, 2, 24, 0.05)
	cfg := quickCfg(24, 2)
	m, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.History()) != cfg.Epochs+cfg.JointEpochs {
		t.Fatalf("history length %d, want %d", len(m.History()), cfg.Epochs+cfg.JointEpochs)
	}
	if m.TrainedOn() != 100 {
		t.Fatalf("TrainedOn = %d", m.TrainedOn())
	}
	if m.SSECurve() != nil {
		t.Fatal("SSECurve should be nil for fixed K")
	}
	if m.FLOPsPerPredict() <= 0 {
		t.Fatal("FLOPsPerPredict must be positive")
	}
	if len(m.Centroids()) != 2 {
		t.Fatal("Centroids length mismatch")
	}
}

func TestPredictWrongWidthReturnsErrBadSegment(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data, _ := segmentSet(r, 50, 2, 16, 0.05)
	m, err := Train(data, quickCfg(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(make([]float64, 8)); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("Predict on wrong width: err = %v, want ErrBadSegment", err)
	}
	// Items wider than the model are rejected by PredictPadded too.
	if _, err := m.PredictPadded(make([]float64, 99)); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("PredictPadded on oversized item: err = %v, want ErrBadSegment", err)
	}
	if _, err := m.PredictBytesBatch([][]byte{make([]byte, 2), make([]byte, 99)}); !errors.Is(err, ErrBadSegment) {
		t.Fatalf("PredictBytesBatch with oversized item: err = %v, want ErrBadSegment", err)
	}
}

func TestPredictPaddedAcceptsNarrowItems(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data, _ := segmentSet(r, 120, 2, 32, 0.05)
	m, err := Train(data, quickCfg(32, 2))
	if err != nil {
		t.Fatal(err)
	}
	c := mustP(m.PredictPadded(make([]float64, 20)))
	if c < 0 || c >= 2 {
		t.Fatalf("padded prediction %d out of range", c)
	}
	// Full-width items route through Predict unchanged.
	if got := mustP(m.PredictPadded(data[0])); got != mustP(m.Predict(data[0])) {
		t.Fatal("full-width PredictPadded disagrees with Predict")
	}
}

func TestPredictBytes(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data, _ := segmentSet(r, 80, 2, 32, 0.05)
	m, err := Train(data, quickCfg(32, 2))
	if err != nil {
		t.Fatal(err)
	}
	b := []byte{0xff, 0x00, 0xff, 0x00}
	c := mustP(m.PredictBytes(b))
	if c2 := mustP(m.Predict(BytesToBits(b))); c2 != c {
		t.Fatalf("PredictBytes %d != Predict(bits) %d", c, c2)
	}
	if c3 := m.MustPredictBytes(b); c3 != c {
		t.Fatalf("MustPredictBytes %d != PredictBytes %d", c3, c)
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	b := []byte{0xa5, 0x3c, 0x00, 0xff}
	bits := BytesToBits(b)
	if len(bits) != 32 {
		t.Fatalf("bits len = %d", len(bits))
	}
	back := BitsToBytes(bits)
	if bitvec.HammingBytes(b, back) != 0 {
		t.Fatalf("round trip mismatch: %x vs %x", b, back)
	}
}

func TestExplicitPaddingRespected(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data, _ := segmentSet(r, 60, 2, 24, 0.05)
	cfg := quickCfg(24, 2)
	cfg.PadExplicit = true
	cfg.PadLocation = padding.Begin
	cfg.PadType = padding.Zero
	m, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Padder().Loc != padding.Begin || m.Padder().Kind != padding.Zero {
		t.Fatalf("explicit padding overridden: %v/%v", m.Padder().Loc, m.Padder().Kind)
	}
	if got := m.Config(); got.PadType != padding.Zero {
		t.Fatal("config lost explicit pad type")
	}
}

func TestDefaultPaddingApplied(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data, _ := segmentSet(r, 60, 2, 24, 0.05)
	m, err := Train(data, quickCfg(24, 2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Padder().Loc != padding.End || m.Padder().Kind != padding.InputBased {
		t.Fatalf("default padding = %v/%v, want end/IB", m.Padder().Loc, m.Padder().Kind)
	}
}

func TestLearnedPaddingTrains(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	// Structured items so the LSTM has a learnable pattern.
	data := make([][]float64, 60)
	for i := range data {
		row := make([]float64, 96)
		for j := range row {
			row[j] = float64(j % 2)
		}
		data[i] = row
	}
	_ = r
	cfg := quickCfg(96, 2)
	cfg.PadExplicit = true
	cfg.PadType = padding.Learned
	cfg.PadLocation = padding.End
	cfg.LearnedPadWindow = 16
	cfg.LearnedPadPredict = 4
	cfg.LearnedPadEpochs = 10
	m, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := mustP(m.PredictPadded(make([]float64, 40)))
	if c < 0 || c >= m.K() {
		t.Fatalf("learned-padded prediction %d out of range", c)
	}
}

func TestManagerSwap(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data, _ := segmentSet(r, 80, 2, 24, 0.05)
	m, err := Train(data, quickCfg(24, 2))
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(m)
	if mgr.Current() != m {
		t.Fatal("Current should be the initial model")
	}
	m2, err := mgr.RetrainSync(data, quickCfg(24, 2))
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Current() != m2 || mgr.Retrains() != 1 {
		t.Fatal("RetrainSync did not swap")
	}
}

func TestManagerAsyncRetrain(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	data, _ := segmentSet(r, 60, 2, 16, 0.05)
	m, err := Train(data, quickCfg(16, 2))
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(m)
	done := make(chan error, 1)
	ok := mgr.RetrainAsync(data, quickCfg(16, 2), func(_ *Model, err error) { done <- err })
	if !ok {
		t.Fatal("RetrainAsync rejected")
	}
	// A second concurrent request must be dropped (only if the first is
	// still running; either way the API must not block).
	mgr.RetrainAsync(data, quickCfg(16, 2), nil)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Quiesce joins every retrain goroutine — including the second request
	// above if it was accepted — so nothing outlives the test.
	mgr.Quiesce()
	if mgr.Retraining() {
		t.Fatal("retrain still in flight after Quiesce")
	}
	// Serving continued throughout; now the new model must be live.
	if mgr.Retrains() < 1 {
		t.Fatal("retrain did not complete")
	}
	if mgr.Current() == nil {
		t.Fatal("no live model")
	}
}

// TestConcurrentPredict verifies prediction is safe (and deterministic)
// under concurrency — the ClusteredAllocator calls Predict without any
// store-level lock. Run with -race to catch cache sharing regressions.
func TestConcurrentPredict(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	data, _ := segmentSet(r, 120, 3, 32, 0.05)
	m, err := Train(data, quickCfg(32, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(data))
	for i, x := range data {
		want[i] = mustP(m.Predict(x))
	}
	done := make(chan bool, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			ok := true
			for i := g; i < len(data); i += 2 {
				if mustP(m.Predict(data[i])) != want[i] {
					ok = false
				}
			}
			done <- ok
		}(g)
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent prediction diverged")
		}
	}
}

func TestPredictBytesBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	data, _ := segmentSet(r, 90, 3, 32, 0.05)
	m, err := Train(data, quickCfg(32, 3))
	if err != nil {
		t.Fatal(err)
	}
	imgs := make([][]byte, len(data))
	for i, row := range data {
		imgs[i] = BitsToBytes(row)
	}
	batch, err := m.PredictBytesBatch(imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(imgs) {
		t.Fatalf("batch len = %d", len(batch))
	}
	for i, img := range imgs {
		if got := mustP(m.PredictBytes(img)); got != batch[i] {
			t.Fatalf("batch[%d] = %d, sequential = %d", i, batch[i], got)
		}
	}
	if out, err := m.PredictBytesBatch(nil); err != nil || len(out) != 0 {
		t.Fatal("empty batch should be empty")
	}
	if out, err := m.PredictBytesBatch(imgs[:1]); err != nil || out[0] != mustP(m.PredictBytes(imgs[0])) {
		t.Fatal("single-item batch mismatch")
	}
}

// TestMemoryAwarePlacementBeatsArbitrary is the end-to-end property the
// whole system exists for: choosing the destination segment by predicted
// cluster yields fewer bit flips than an arbitrary destination.
func TestMemoryAwarePlacementBeatsArbitrary(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	segBits := 64
	// One draw so training data, free segments, and incoming writes all
	// share the same planted prototypes.
	all, _ := segmentSet(r, 500, 4, segBits, 0.03)
	data, incoming := all[:400], all[400:]
	m, err := Train(data[:300], quickCfg(segBits, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Free segments: the remaining 100, grouped by predicted cluster.
	free := map[int][][]float64{}
	for _, seg := range data[300:] {
		c := mustP(m.Predict(seg))
		free[c] = append(free[c], seg)
	}
	aware, arbitrary := 0, 0
	arb := rand.New(rand.NewSource(13))
	pool := data[300:]
	for _, item := range incoming {
		c := mustP(m.Predict(item))
		if segs := free[c]; len(segs) > 0 {
			aware += bitvec.HammingFloats(segs[0], item)
		} else {
			aware += bitvec.HammingFloats(pool[arb.Intn(len(pool))], item)
		}
		arbitrary += bitvec.HammingFloats(pool[arb.Intn(len(pool))], item)
	}
	if float64(aware) > 0.7*float64(arbitrary) {
		t.Fatalf("memory-aware placement flips %d not well below arbitrary %d", aware, arbitrary)
	}
}
