package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"e2nvm/internal/core"
	"e2nvm/internal/dap"
	"e2nvm/internal/hotcache"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("exp-hotcold", HotCold) }

// HotCold measures the two halves of the hot-key path. Read side: a
// zipfian read stream over a kvstore, with and without the HotRing-style
// DRAM cache in front, reporting device reads per operation and cache hit
// rate (every hot Get the cache absorbs is a device read that never
// happens). Write side: an update-heavy hot/cold workload on a
// small-endurance faulting device, with and without temperature steering
// (Options.KeyTemp fed by the same cache's hotness), reporting when the
// first segment retires and how many segments are lost over the run —
// steering sends hot keys to the least-worn cluster and cold keys to the
// most-worn, so the wear-out cliff arrives later.
//
// Both halves are wall-clock free: the read side counts device reads, the
// write side counts operations to retirement; latency belongs to kvbench.
func HotCold(cfg RunConfig) (*Result, error) {
	const segSize = 64
	const k = 6

	table := stats.NewTable("mode", "dev_reads_per_op", "hit_pct",
		"served_puts", "first_retire_op", "retired", "steered")

	rd, err := hotColdReads(cfg, segSize, k)
	if err != nil {
		return nil, err
	}
	for _, r := range rd {
		table.AddRow(r.name, r.readsPerOp, r.hitPct, -1, -1, -1, -1)
	}
	wr, err := hotColdWear(cfg, segSize, k)
	if err != nil {
		return nil, err
	}
	for _, r := range wr {
		table.AddRow(r.name, -1.0, r.hitPct, r.served, r.firstRetire, r.retired, r.steered)
	}

	notes := []string{
		"read rows: zipfian (theta=0.99-shaped stdlib zipf) Get stream; dev_reads_per_op is the device reads the cache did or did not absorb",
		"wear rows: update-heavy hot/cold mix on a low-endurance faulting device; first_retire_op is the op index of the first segment retirement (-1: none)",
		"steering must not arrive earlier at the cliff: first_retire_op(steered) >= first_retire_op(no steering), and typically retires fewer segments",
		"-1 cells are not-applicable for that mode",
	}
	return &Result{
		ID:    "exp-hotcold",
		Title: "Hot/cold split: cache read absorption and wear-steered lifetime",
		Table: table,
		Notes: notes,
	}, nil
}

type hotColdReadRow struct {
	name       string
	readsPerOp float64
	hitPct     float64
}

// hotColdReads drives the same zipfian read stream against a kvstore bare
// and through a hotcache front, counting device reads.
func hotColdReads(cfg RunConfig, segSize, k int) ([]hotColdReadRow, error) {
	numSegs := cfg.scaleInt(256, 64)
	keys := numSegs / 4
	ops := cfg.scaleInt(8000, 1200)
	vg := workload.NewValueGen(segSize-kvstore.RecordOverhead, k, 0.03, cfg.Seed)

	var rows []hotColdReadRow
	for _, mode := range []struct {
		name   string
		cached bool
	}{
		{"read zipf, uncached", false},
		{"read zipf, cached", true},
	} {
		dev, err := nvm.NewDevice(nvm.DefaultConfig(segSize, numSegs))
		if err != nil {
			return nil, err
		}
		st, err := kvstore.Open(dev, core.Config{
			K: k, LatentDim: 8, HiddenDim: 48, Epochs: 6, JointEpochs: 1,
			Seed: cfg.Seed,
		}, kvstore.Options{})
		if err != nil {
			return nil, err
		}
		for key := 0; key < keys; key++ {
			if err := st.Put(uint64(key), vg.For(uint64(key))); err != nil {
				return nil, err
			}
		}
		var cache *hotcache.Cache
		if mode.cached {
			cache, err = hotcache.New(hotcache.Config{MaxBytes: 1 << 20})
			if err != nil {
				return nil, err
			}
		}
		dev.ResetStats()
		r := rand.New(rand.NewSource(cfg.Seed + 31))
		zipf := rand.NewZipf(r, 1.2, 1, uint64(keys-1))
		for op := 0; op < ops; op++ {
			key := zipf.Uint64()
			if cache == nil {
				if _, ok, err := st.Get(key); err != nil || !ok {
					return nil, fmt.Errorf("exp-hotcold: uncached Get(%d) = (%v,%v)", key, ok, err)
				}
				continue
			}
			if _, ok := cache.GetInto(key, nil); ok {
				continue
			}
			token := cache.BeginFill(key)
			v, ok, err := st.Get(key)
			if err != nil || !ok {
				return nil, fmt.Errorf("exp-hotcold: cached Get(%d) = (%v,%v)", key, ok, err)
			}
			cache.CompleteFill(key, v, token)
		}
		row := hotColdReadRow{
			name:       mode.name,
			readsPerOp: float64(dev.Stats().Reads) / float64(ops),
		}
		if cache != nil {
			cs := cache.Stats()
			row.hitPct = 100 * float64(cs.Hits) / float64(cs.Hits+cs.Misses)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

type hotColdWearRow struct {
	name        string
	hitPct      float64
	served      int
	firstRetire int
	retired     uint64
	steered     uint64
}

// hotColdWear runs an update-heavy hot/cold workload to (or past) the
// first segment retirement, with and without cache-fed wear steering. One
// shared model keeps the clustering decisions identical across modes.
func hotColdWear(cfg RunConfig, segSize, k int) ([]hotColdWearRow, error) {
	numSegs := cfg.scaleInt(256, 64)
	maxOps := cfg.scaleInt(20000, 2500)
	keys := numSegs / 4
	vg := workload.NewValueGen(segSize-kvstore.RecordOverhead, k, 0.03, cfg.Seed)

	devCfg := nvm.DefaultConfig(segSize, numSegs)
	devCfg.EnduranceWrites = 160
	devCfg.Fault = nvm.FaultConfig{
		Seed:          cfg.Seed + 9,
		ProbPerWrite:  0.05,
		OnsetFraction: 0.5,
		BitsPerFault:  2,
	}
	seed := func(dev *nvm.Device) error {
		for a := 0; a < numSegs; a++ {
			img := make([]byte, segSize)
			copy(img[kvstore.RecordOverhead:], vg.For(uint64(a)))
			if err := dev.FillSegment(a, img); err != nil {
				return err
			}
		}
		return nil
	}
	sampleDev, err := nvm.NewDevice(devCfg)
	if err != nil {
		return nil, err
	}
	if err := seed(sampleDev); err != nil {
		return nil, err
	}
	imgs := make([][]float64, numSegs)
	for a := 0; a < numSegs; a++ {
		b, err := sampleDev.Peek(a)
		if err != nil {
			return nil, err
		}
		imgs[a] = core.BytesToBits(b)
	}
	model, err := core.Train(imgs, core.Config{
		InputBits: segSize * 8, K: k, LatentDim: 10, HiddenDim: 48,
		Epochs: 8, JointEpochs: 1, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	var rows []hotColdWearRow
	for _, mode := range []struct {
		name  string
		steer bool
	}{
		{"wear mix, no steering", false},
		{"wear mix, steered", true},
	} {
		dev, err := nvm.NewDevice(devCfg)
		if err != nil {
			return nil, err
		}
		if err := seed(dev); err != nil {
			return nil, err
		}
		cache, err := hotcache.New(hotcache.Config{MaxBytes: 1 << 20})
		if err != nil {
			return nil, err
		}
		opts := kvstore.Options{DegradeThreshold: 0.25}
		if mode.steer {
			opts.KeyTemp = func(key uint64) dap.Temp {
				present, hot := cache.Hotness(key)
				switch {
				case hot:
					return dap.TempHot
				case present:
					return dap.TempCold
				default:
					return dap.TempNone
				}
			}
		}
		st, err := kvstore.OpenWith(dev, model, opts)
		if err != nil {
			return nil, err
		}
		dev.ResetStats()
		r := rand.New(rand.NewSource(cfg.Seed + 3))
		zipf := rand.NewZipf(r, 1.2, 1, uint64(keys-1))
		served, firstRetire := 0, -1
		for op := 0; op < maxOps; op++ {
			key := zipf.Uint64()
			if op%3 == 2 { // read leg: heats the cache like the facade does
				if v, ok := cache.GetInto(key, nil); ok {
					_ = v
				} else {
					token := cache.BeginFill(key)
					if v, ok, err := st.Get(key); err == nil && ok {
						cache.CompleteFill(key, v, token)
					}
				}
				continue
			}
			v := vg.ForVersion(key, op)
			if perr := st.Put(key, v); perr != nil {
				if errors.Is(perr, kvstore.ErrDegraded) {
					if firstRetire < 0 && st.Stats().Retired > 0 {
						firstRetire = op
					}
					break // capacity gone: end of service life
				}
				if !errors.Is(perr, kvstore.ErrWornOut) && !errors.Is(perr, kvstore.ErrNoSpace) {
					return nil, perr
				}
			} else {
				served++
				cache.Invalidate(key) // write-through, as the facade orders it
			}
			if firstRetire < 0 && st.Stats().Retired > 0 {
				firstRetire = op
			}
			if op%64 == 63 {
				if _, serr := st.Scrub(numSegs / 8); serr != nil {
					return nil, serr
				}
				if firstRetire < 0 && st.Stats().Retired > 0 {
					firstRetire = op
				}
			}
		}
		sst := st.Stats()
		cs := cache.Stats()
		row := hotColdWearRow{
			name:        mode.name,
			served:      served,
			firstRetire: firstRetire,
			retired:     sst.Retired,
			steered:     sst.Steered,
		}
		if cs.Hits+cs.Misses > 0 {
			row.hitPct = 100 * float64(cs.Hits) / float64(cs.Hits+cs.Misses)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
