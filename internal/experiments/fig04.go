package experiments

import (
	"fmt"
	"time"

	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/pnw"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig04", Fig4) }

// Fig4 reproduces Figure 4: preprocessing/training latency and resulting
// bit flips as the feature count (bits per item) grows, for PNW's two
// modes (raw K-means, PCA+K-means) and E2-NVM's VAE-based clustering on
// MNIST-like data with 20 clusters. The paper's findings: raw K-means
// latency explodes beyond a few thousand features; PCA+K-means is fast but
// flips more bits; the VAE is both fast and most accurate.
func Fig4(cfg RunConfig) (*Result, error) {
	dims := []int{32, 64, 128, 256, 512, 1024, 2048}
	n := cfg.scaleInt(500, 80)
	const k = 20

	table := stats.NewTable("features",
		"kmeans_ms", "pca+kmeans_ms", "e2nvm_ms",
		"kmeans_flips/item", "pca+kmeans_flips/item", "e2nvm_flips/item")

	for _, dim := range dims {
		ds := workload.MNISTLike(2*n, dim, cfg.Seed+int64(dim))
		train := ds.Items[:n]
		test := toBytesAll(ds.Items[n:], dim/8)
		seedImgs := toBytesAll(train, dim/8)

		// --- PNW raw K-means ---
		t0 := time.Now() // lint:allow deepdeterminism — Figure 4 reports wall-clock training time
		kmRaw, err := pnw.Train(train, pnw.Config{K: k, Mode: pnw.KMeansOnly, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		rawMs := float64(time.Since(t0).Microseconds()) / 1e3 // lint:allow deepdeterminism — Figure 4 reports wall-clock training time

		// --- PNW PCA + K-means ---
		t0 = time.Now() // lint:allow deepdeterminism — Figure 4 reports wall-clock training time
		kmPCA, err := pnw.Train(train, pnw.Config{K: k, Mode: pnw.PCAKMeans, PCADims: 10, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		pcaMs := float64(time.Since(t0).Microseconds()) / 1e3 // lint:allow deepdeterminism — Figure 4 reports wall-clock training time

		// --- E2-NVM VAE + K-means ---
		t0 = time.Now() // lint:allow deepdeterminism — Figure 4 reports wall-clock training time
		e2, err := core.Train(train, core.Config{
			InputBits: dim, K: k, LatentDim: 10, HiddenDim: 48,
			Epochs: 6, JointEpochs: 1, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		vaeMs := float64(time.Since(t0).Microseconds()) / 1e3 // lint:allow deepdeterminism — Figure 4 reports wall-clock training time

		flips := func(model predictor) (float64, error) {
			dev, err := seededDevice(nvm.DefaultConfig(dim/8, n), seedImgs)
			if err != nil {
				return 0, err
			}
			p, err := newClusterPlacer(model, k, dev, addrRange(n))
			if err != nil {
				return 0, err
			}
			dev.ResetStats()
			per, err := runPlacement(dev, p, test, n/2)
			if err != nil {
				return 0, err
			}
			return stats.Mean(per), nil
		}
		fRaw, err := flips(pnwAdapter{kmRaw})
		if err != nil {
			return nil, err
		}
		fPCA, err := flips(pnwAdapter{kmPCA})
		if err != nil {
			return nil, err
		}
		fVAE, err := flips(e2)
		if err != nil {
			return nil, err
		}
		table.AddRow(dim, rawMs, pcaMs, vaeMs, fRaw, fPCA, fVAE)
	}
	return &Result{
		ID:    "fig04",
		Title: "Bit flips and training latency vs feature count (E2-NVM vs PNW)",
		Table: table,
		Notes: []string{
			fmt.Sprintf("MNIST-like, %d training items, k=%d; dims 32..2048 (paper sweeps to 16384 on a GPU)", n, k),
			"expected shape: raw K-means time grows superlinearly with features; PCA+K-means flips > raw; VAE fastest at high dims with fewest flips",
		},
	}, nil
}
