// Package testutil holds tiny helpers shared by the repo's test suites.
//
// RaceEnabled lets alloc-count tests skip under the race detector, whose
// sync.Pool deliberately drops Puts (so pooled paths allocate by design).
// It replaces the per-package norace_test.go/race_test.go flag pairs that
// kvstore and shard used to duplicate.
package testutil
