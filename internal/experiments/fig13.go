package experiments

import (
	"fmt"

	"e2nvm/internal/core"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig13", Fig13) }

// Fig13 reproduces Figure 13: the average updated-bits ratio and total
// memory energy for a grid of memory segment sizes × memory pool sizes on
// the mixture of all real-like workloads. The paper's conclusion: the
// smaller the segment size relative to the pool, the lower the ratio and
// the energy (more placement choices per written byte).
func Fig13(cfg RunConfig) (*Result, error) {
	segSizes := []int{16, 32, 64, 128}
	poolSizes := []int{
		cfg.scaleInt(128, 64),
		cfg.scaleInt(256, 96),
		cfg.scaleInt(512, 128),
		cfg.scaleInt(1024, 192),
	}
	writes := cfg.scaleInt(1200, 250)
	const k = 8

	table := stats.NewTable("segment_B", "pool_segments", "seg/pool_ratio", "updated_bits_ratio", "energy_pJ/write")
	for _, segSize := range segSizes {
		bits := segSize * 8
		per := cfg.scaleInt(400, 120)
		mix, err := workload.Mixture("mixture",
			workload.AmazonAccessLike(per, bits, cfg.Seed),
			workload.MNISTLike(per, bits, cfg.Seed+1),
			workload.PubMedLike(per, bits, cfg.Seed+2),
			workload.CIFARLike(per, bits, cfg.Seed+3),
		)
		if err != nil {
			return nil, err
		}
		mix = mix.Shuffled(cfg.Seed + 4)
		trainN := per
		if trainN > len(mix.Items)/2 {
			trainN = len(mix.Items) / 2
		}
		model, err := core.Train(mix.Items[:trainN], core.Config{
			InputBits: bits, K: k, LatentDim: 10, HiddenDim: 48,
			Epochs: 8, JointEpochs: 1, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, pool := range poolSizes {
			seedImgs := make([][]byte, pool)
			for i := range seedImgs {
				seedImgs[i] = toBytes(mix.Items[i%len(mix.Items)], segSize)
			}
			items := make([][]byte, writes)
			for i := range items {
				items[i] = toBytes(mix.Items[(trainN+i)%len(mix.Items)], segSize)
			}
			dev, err := seededDevice(nvm.DefaultConfig(segSize, pool), seedImgs)
			if err != nil {
				return nil, err
			}
			p, err := newClusterPlacer(model, k, dev, addrRange(pool))
			if err != nil {
				return nil, err
			}
			dev.ResetStats()
			if _, err := runPlacement(dev, p, items, pool*3/4); err != nil {
				return nil, err
			}
			s := dev.Stats()
			ratio := float64(s.BitsFlipped) / float64(s.BitsWritten)
			table.AddRow(segSize, pool,
				float64(segSize)/float64(pool*segSize),
				ratio, s.EnergyPJ/float64(s.Writes))
		}
	}
	return &Result{
		ID:    "fig13",
		Title: "Updated-bits ratio and energy vs segment size × pool size (mixture workload)",
		Table: table,
		Notes: []string{
			fmt.Sprintf("%d writes per cell, k=%d, mixture of Amazon/MNIST/PubMed/CIFAR-like", writes, k),
			"expected shape: ratio and energy fall as the pool grows relative to the segment size",
		},
	}, nil
}
