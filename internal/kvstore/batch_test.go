package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"e2nvm/internal/testutil"
)

// TestPutBatchMatchesSequentialPut: a PutBatch must leave the store in
// exactly the state a loop of Puts would — same values readable, same
// live-key count.
func TestPutBatchMatchesSequentialPut(t *testing.T) {
	batched := openStore(t, 32, 128, Options{})
	seq := openStore(t, 32, 128, Options{})

	n := 40 // crosses putBatchBlock boundaries, including a short tail
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i * 7)
		vals[i] = []byte(fmt.Sprintf("value-%03d", i))
	}
	if err := batched.PutBatch(keys, vals, nil); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	for i := range keys {
		if err := seq.Put(keys[i], vals[i]); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if batched.Len() != seq.Len() {
		t.Fatalf("Len: batched %d, sequential %d", batched.Len(), seq.Len())
	}
	for i, key := range keys {
		got, ok, err := batched.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get %d: ok=%v err=%v", key, ok, err)
		}
		if !bytes.Equal(got, vals[i]) {
			t.Fatalf("key %d: got %q, want %q", key, got, vals[i])
		}
	}
	if got := batched.Stats().Puts; got != uint64(n) {
		t.Fatalf("Stats.Puts = %d, want %d", got, n)
	}
}

// TestPutBatchDuplicateKeys: duplicates within one batch must apply in
// index order — the later value wins, and the earlier copy's segment is
// recycled rather than leaked.
func TestPutBatchDuplicateKeys(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	keys := []uint64{5, 9, 5, 7, 5}
	vals := [][]byte{[]byte("first"), []byte("nine"), []byte("second"), []byte("seven"), []byte("third")}
	if err := s.PutBatch(keys, vals, nil); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	got, ok, err := s.Get(5)
	if err != nil || !ok {
		t.Fatalf("Get(5): ok=%v err=%v", ok, err)
	}
	if string(got) != "third" {
		t.Fatalf("Get(5) = %q, want the batch's last write %q", got, "third")
	}
}

// TestPutBatchPartialFailure: an oversized value mid-batch must fail only
// its own slot — every other item still lands, and the per-item error
// slice pinpoints the failure.
func TestPutBatchPartialFailure(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	keys := []uint64{1, 2, 3}
	vals := [][]byte{[]byte("ok-1"), make([]byte, s.MaxValue()+1), []byte("ok-3")}
	errs := make([]error, len(keys))
	err := s.PutBatch(keys, vals, errs)
	if !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("PutBatch error = %v, want ErrValueTooLarge", err)
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy items got errors: %v, %v", errs[0], errs[2])
	}
	if !errors.Is(errs[1], ErrValueTooLarge) {
		t.Fatalf("errs[1] = %v, want ErrValueTooLarge", errs[1])
	}
	for _, key := range []uint64{1, 3} {
		if _, ok, err := s.Get(key); !ok || err != nil {
			t.Fatalf("key %d missing after partial failure: ok=%v err=%v", key, ok, err)
		}
	}
	if _, ok, _ := s.Get(2); ok {
		t.Fatal("oversized item was stored")
	}
}

// TestPutBatchLengthMismatch: misaligned slices are rejected up front.
func TestPutBatchLengthMismatch(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	if err := s.PutBatch([]uint64{1, 2}, [][]byte{[]byte("x")}, nil); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("values mismatch error = %v, want ErrBadOptions", err)
	}
	if err := s.PutBatch([]uint64{1}, [][]byte{[]byte("x")}, make([]error, 2)); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("errs mismatch error = %v, want ErrBadOptions", err)
	}
	if err := s.GetBatch([]uint64{1, 2}, make([][]byte, 1), make([]bool, 2), nil); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("GetBatch mismatch error = %v, want ErrBadOptions", err)
	}
}

// TestGetBatch: hits fill their dst slots (reusing caller buffers),
// misses report ok=false without error.
func TestGetBatch(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	if err := s.Put(10, []byte("ten")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(30, []byte("thirty")); err != nil {
		t.Fatal(err)
	}
	keys := []uint64{10, 20, 30}
	dsts := make([][]byte, len(keys))
	dsts[0] = make([]byte, 0, 16) // pre-sized: must be reused, not replaced
	reuse := &dsts[0][:1][0]
	oks := make([]bool, len(keys))
	if err := s.GetBatch(keys, dsts, oks, nil); err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	if !oks[0] || oks[1] || !oks[2] {
		t.Fatalf("oks = %v, want [true false true]", oks)
	}
	if string(dsts[0]) != "ten" || string(dsts[2]) != "thirty" {
		t.Fatalf("values = %q, %q", dsts[0], dsts[2])
	}
	if &dsts[0][:1][0] != reuse {
		t.Fatal("GetBatch reallocated a dst buffer that was large enough")
	}
	if len(dsts[1]) != 0 {
		t.Fatalf("missing key left %d bytes in its slot", len(dsts[1]))
	}
}

// TestPutBatchZeroAlloc / TestGetBatchZeroAlloc: the batched paths carry
// the same 0 allocs/op contract as Put/GetInto once scratch is warm.
func TestPutBatchZeroAlloc(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("race-mode sync.Pool drops Puts, so the pooled predict scratch allocates by design")
	}
	s := openStore(t, 32, 128, Options{})
	keys := make([]uint64, 8)
	vals := make([][]byte, 8)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = []byte("steady-val")
	}
	if err := s.PutBatch(keys, vals, nil); err != nil { // warm scratch
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(50, func() {
		if err := s.PutBatch(keys, vals, nil); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("PutBatch allocates %v per batch, want 0", n)
	}
}

func TestGetBatchZeroAlloc(t *testing.T) {
	s := openStore(t, 32, 64, Options{})
	keys := make([]uint64, 8)
	vals := make([][]byte, 8)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = []byte("steady-val")
	}
	if err := s.PutBatch(keys, vals, nil); err != nil {
		t.Fatal(err)
	}
	dsts := make([][]byte, len(keys))
	oks := make([]bool, len(keys))
	if err := s.GetBatch(keys, dsts, oks, nil); err != nil { // warm dst buffers
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(50, func() {
		if err := s.GetBatch(keys, dsts, oks, nil); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Fatalf("GetBatch allocates %v per batch, want 0", n)
	}
}

// TestPutBatchArbitraryPlacement: the baseline placement policy must ride
// the batched path too (no prediction, in-place updates).
func TestPutBatchArbitraryPlacement(t *testing.T) {
	s := openStore(t, 32, 64, Options{Placement: PlaceArbitrary})
	keys := []uint64{1, 2, 1}
	vals := [][]byte{[]byte("a"), []byte("b"), []byte("a2")}
	if err := s.PutBatch(keys, vals, nil); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	got, ok, err := s.Get(1)
	if err != nil || !ok || string(got) != "a2" {
		t.Fatalf("Get(1) = %q ok=%v err=%v, want a2", got, ok, err)
	}
}
