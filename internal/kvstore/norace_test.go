//go:build !race

package kvstore

// raceEnabled lets alloc-count tests skip under the race detector, whose
// sync.Pool deliberately drops Puts (so pooled paths allocate by design).
const raceEnabled = false
