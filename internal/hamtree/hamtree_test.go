package hamtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"e2nvm/internal/bitvec"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("expected error for zero segment size")
	}
}

func TestEmptyTree(t *testing.T) {
	tr, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("empty Len != 0")
	}
	if _, _, ok := tr.Nearest(make([]byte, 8)); ok {
		t.Fatal("Nearest on empty tree succeeded")
	}
}

func TestInsertValidation(t *testing.T) {
	tr, _ := New(8)
	if err := tr.Insert(0, make([]byte, 7)); err == nil {
		t.Fatal("wrong-size insert accepted")
	}
}

func TestExactMatch(t *testing.T) {
	tr, _ := New(4)
	a := []byte{1, 2, 3, 4}
	b := []byte{0xff, 0xff, 0xff, 0xff}
	if err := tr.Insert(10, a); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(20, b); err != nil {
		t.Fatal(err)
	}
	addr, d, ok := tr.Nearest(a)
	if !ok || addr != 10 || d != 0 {
		t.Fatalf("Nearest = (%d,%d,%v), want (10,0,true)", addr, d, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after pop", tr.Len())
	}
	// Popped address is gone; next query for a returns b at distance > 0.
	addr, d, ok = tr.Nearest(a)
	if !ok || addr != 20 || d == 0 {
		t.Fatalf("second Nearest = (%d,%d,%v)", addr, d, ok)
	}
}

func TestDuplicateContents(t *testing.T) {
	tr, _ := New(4)
	c := []byte{5, 5, 5, 5}
	for i := 0; i < 3; i++ {
		if err := tr.Insert(i, c); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		addr, d, ok := tr.Nearest(c)
		if !ok || d != 0 || seen[addr] {
			t.Fatalf("pop %d = (%d,%d,%v)", i, addr, d, ok)
		}
		seen[addr] = true
	}
	if tr.Len() != 0 {
		t.Fatal("tree should be empty")
	}
}

// TestNearestIsTrueNearest cross-checks the BK-tree search against brute
// force.
func TestNearestIsTrueNearest(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, err := New(8)
		if err != nil {
			return false
		}
		contents := make([][]byte, 40)
		for i := range contents {
			c := make([]byte, 8)
			r.Read(c)
			contents[i] = c
			if err := tr.Insert(i, c); err != nil {
				return false
			}
		}
		q := make([]byte, 8)
		r.Read(q)
		_, d, ok := tr.Nearest(q)
		if !ok {
			return false
		}
		bestD := 1 << 30
		for _, c := range contents {
			if dd := bitvec.HammingBytes(c, q); dd < bestD {
				bestD = dd
			}
		}
		return d == bestD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestChurn exercises insert/pop cycles (triggering rebuilds) while
// checking conservation.
func TestChurn(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr, _ := New(8)
	outstanding := map[int]bool{}
	next := 0
	for op := 0; op < 3000; op++ {
		if r.Intn(2) == 0 || len(outstanding) == 0 {
			c := make([]byte, 8)
			r.Read(c)
			if err := tr.Insert(next, c); err != nil {
				t.Fatal(err)
			}
			outstanding[next] = true
			next++
		} else {
			q := make([]byte, 8)
			r.Read(q)
			addr, _, ok := tr.Nearest(q)
			if !ok {
				t.Fatal("Nearest failed with live entries")
			}
			if !outstanding[addr] {
				t.Fatalf("popped unknown/duplicate address %d", addr)
			}
			delete(outstanding, addr)
		}
		if tr.Len() != len(outstanding) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(outstanding))
		}
	}
	if tr.Depth() <= 0 && tr.Len() > 0 {
		t.Fatal("depth diagnostic broken")
	}
}

// TestPlacementQuality: routing writes through the tree onto clustered
// contents must flip far fewer bits than FIFO placement.
func TestPlacementQuality(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const segSize = 16
	protos := make([][]byte, 4)
	for i := range protos {
		p := make([]byte, segSize)
		r.Read(p)
		protos[i] = p
	}
	noisy := func() []byte {
		c := append([]byte(nil), protos[r.Intn(4)]...)
		for i := 0; i < 6; i++ {
			b := r.Intn(segSize * 8)
			c[b>>3] ^= 1 << (uint(b) & 7)
		}
		return c
	}
	tr, _ := New(segSize)
	free := make([][]byte, 128)
	for i := range free {
		free[i] = noisy()
		if err := tr.Insert(i, free[i]); err != nil {
			t.Fatal(err)
		}
	}
	treeFlips, fifoFlips := 0, 0
	fifo := 0
	for w := 0; w < 100; w++ {
		item := noisy()
		_, d, ok := tr.Nearest(item)
		if !ok {
			t.Fatal("tree exhausted")
		}
		treeFlips += d
		fifoFlips += bitvec.HammingBytes(free[fifo], item)
		fifo++
	}
	if treeFlips*2 > fifoFlips {
		t.Fatalf("tree placement flips %d not well below FIFO %d", treeFlips, fifoFlips)
	}
}

func BenchmarkNearest1024(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr, _ := New(32)
	for i := 0; i < 1024; i++ {
		c := make([]byte, 32)
		r.Read(c)
		_ = tr.Insert(i, c)
	}
	q := make([]byte, 32)
	r.Read(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, _, ok := tr.Nearest(q)
		if !ok {
			b.Fatal("empty")
		}
		_ = tr.Insert(addr, q)
	}
}
