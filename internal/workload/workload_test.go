package workload

import (
	"math"
	"math/rand"
	"testing"

	"e2nvm/internal/bitvec"
)

func density(items [][]float64) float64 {
	ones, total := 0, 0
	for _, it := range items {
		for _, b := range it {
			total++
			if b >= 0.5 {
				ones++
			}
		}
	}
	return float64(ones) / float64(total)
}

// intraInterRatio returns mean intra-class over inter-class Hamming
// distance — must be well below 1 for clusterable data.
func intraInterRatio(d *Dataset) float64 {
	var intra, inter float64
	var nIntra, nInter int
	step := len(d.Items)/60 + 1
	for i := 0; i < len(d.Items); i += step {
		for j := i + 1; j < len(d.Items); j += step {
			h := float64(bitvec.HammingFloats(d.Items[i], d.Items[j]))
			if d.Labels[i] == d.Labels[j] {
				intra += h
				nIntra++
			} else {
				inter += h
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 || inter == 0 {
		return 1
	}
	return (intra / float64(nIntra)) / (inter / float64(nInter))
}

func TestClassDatasetsAreClusterable(t *testing.T) {
	for _, d := range []*Dataset{
		MNISTLike(300, 128, 1),
		FashionMNISTLike(300, 128, 2),
		CIFARLike(300, 128, 3),
		ImageNetLike(300, 128, 4),
		PubMedLike(300, 128, 5),
		RoadNetworkLike(300, 128, 6),
		AmazonAccessLike(300, 128, 7),
	} {
		if len(d.Items) != 300 {
			t.Fatalf("%s: %d items", d.Name, len(d.Items))
		}
		for _, it := range d.Items {
			if len(it) != 128 {
				t.Fatalf("%s: item width %d", d.Name, len(it))
			}
		}
		if r := intraInterRatio(d); r > 0.8 {
			t.Errorf("%s: intra/inter ratio %.2f too high (not clusterable)", d.Name, r)
		}
	}
}

func TestDatasetDensities(t *testing.T) {
	if dn := density(MNISTLike(200, 256, 1).Items); dn > 0.35 {
		t.Fatalf("MNIST-like density %.2f too high (strokes are sparse)", dn)
	}
	if dn := density(PubMedLike(200, 256, 1).Items); dn > 0.15 {
		t.Fatalf("PubMed-like density %.2f too high (sparse counts)", dn)
	}
	if dn := density(CIFARLike(200, 256, 1).Items); math.Abs(dn-0.5) > 0.15 {
		t.Fatalf("CIFAR-like density %.2f not near 0.5", dn)
	}
}

func TestVideoTemporalCorrelation(t *testing.T) {
	d := CCTVLike(50, 512, 7)
	// Consecutive frames are close; distant frames far.
	near := bitvec.HammingFloats(d.Items[10], d.Items[11])
	far := bitvec.HammingFloats(d.Items[0], d.Items[49])
	if near*3 > far {
		t.Fatalf("video frames lack temporal structure: near=%d far=%d", near, far)
	}
}

func TestDeterminism(t *testing.T) {
	a := MNISTLike(50, 64, 9)
	b := MNISTLike(50, 64, 9)
	for i := range a.Items {
		if bitvec.HammingFloats(a.Items[i], b.Items[i]) != 0 {
			t.Fatal("same seed produced different data")
		}
	}
	c := MNISTLike(50, 64, 10)
	same := true
	for i := range a.Items {
		if bitvec.HammingFloats(a.Items[i], c.Items[i]) != 0 {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestBytesPacking(t *testing.T) {
	d := &Dataset{Name: "x", Bits: 10, Items: [][]float64{{1, 0, 0, 0, 0, 0, 0, 0, 1, 1}}}
	b := d.Bytes(0)
	if len(b) != 2 || b[0] != 0x01 || b[1] != 0x03 {
		t.Fatalf("Bytes = %x", b)
	}
}

func TestSplit(t *testing.T) {
	d := MNISTLike(100, 32, 1)
	train, test := d.Split(80)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("Split = %d/%d", len(train), len(test))
	}
	train, test = d.Split(200)
	if len(train) != 100 || len(test) != 0 {
		t.Fatalf("over-Split = %d/%d", len(train), len(test))
	}
}

func TestMixture(t *testing.T) {
	m, err := Mixture("mix", MNISTLike(30, 64, 1), CIFARLike(20, 64, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Items) != 50 {
		t.Fatalf("mixture size %d", len(m.Items))
	}
	if _, err := Mixture("bad", MNISTLike(5, 64, 1), MNISTLike(5, 32, 1)); err == nil {
		t.Fatal("expected width mismatch error")
	}
	if _, err := Mixture("empty"); err == nil {
		t.Fatal("expected empty mixture error")
	}
}

func TestShuffled(t *testing.T) {
	d := MNISTLike(100, 32, 1)
	s := d.Shuffled(2)
	if len(s.Items) != 100 {
		t.Fatal("shuffle changed size")
	}
	moved := 0
	for i := range d.Items {
		if bitvec.HammingFloats(d.Items[i], s.Items[i]) != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("shuffle did not permute")
	}
}

func TestDatasetBundles(t *testing.T) {
	if got := len(TextualDatasets(20, 64, 1)); got != 3 {
		t.Fatalf("TextualDatasets = %d", got)
	}
	if got := len(MultimediaDatasets(20, 64, 1)); got != 3 {
		t.Fatalf("MultimediaDatasets = %d", got)
	}
}

// ----------------------------------------------------------------- ycsb --

func TestNewYCSBValidation(t *testing.T) {
	if _, err := NewYCSB('Z', 100, 1); err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if _, err := NewYCSB(YCSBA, 0, 1); err == nil {
		t.Fatal("expected error for zero records")
	}
}

func TestYCSBMixes(t *testing.T) {
	const n = 20000
	cases := []struct {
		w      YCSBWorkload
		counts map[OpType]float64 // expected fraction
	}{
		{YCSBA, map[OpType]float64{OpRead: 0.5, OpUpdate: 0.5}},
		{YCSBB, map[OpType]float64{OpRead: 0.95, OpUpdate: 0.05}},
		{YCSBC, map[OpType]float64{OpRead: 1.0}},
		{YCSBD, map[OpType]float64{OpRead: 0.95, OpInsert: 0.05}},
		{YCSBE, map[OpType]float64{OpScan: 0.95, OpInsert: 0.05}},
		{YCSBF, map[OpType]float64{OpRead: 0.5, OpReadModifyWrite: 0.5}},
	}
	for _, c := range cases {
		g, err := NewYCSB(c.w, 1000, 42)
		if err != nil {
			t.Fatal(err)
		}
		got := map[OpType]int{}
		for i := 0; i < n; i++ {
			op := g.Next()
			got[op.Type]++
			if op.Key >= g.KeyCount() {
				t.Fatalf("%s: key %d out of range %d", c.w, op.Key, g.KeyCount())
			}
			if op.Type == OpScan && (op.ScanLen < 1 || op.ScanLen > 100) {
				t.Fatalf("%s: scan len %d", c.w, op.ScanLen)
			}
		}
		for typ, want := range c.counts {
			frac := float64(got[typ]) / n
			if math.Abs(frac-want) > 0.02 {
				t.Errorf("%s: %v fraction %.3f, want %.2f", c.w, typ, frac, want)
			}
		}
	}
}

func TestYCSBZipfSkew(t *testing.T) {
	g, err := NewYCSB(YCSBA, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for i := 0; i < 50000; i++ {
		counts[g.Next().Key]++
	}
	// Zipfian: a small fraction of keys receives a large fraction of
	// traffic. Count traffic to the 100 hottest keys.
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	top := 0
	for i := 0; i < 100; i++ {
		best := 0
		for j, f := range freqs {
			if f > freqs[best] {
				best = j
			}
			_ = j
		}
		top += freqs[best]
		freqs[best] = 0
	}
	if frac := float64(top) / 50000; frac < 0.3 {
		t.Fatalf("zipfian skew too weak: top-100 keys get %.2f of traffic", frac)
	}
}

func TestYCSBInsertGrowsKeySpace(t *testing.T) {
	g, err := NewYCSB(YCSBD, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	start := g.KeyCount()
	inserted := uint64(0)
	for i := 0; i < 2000; i++ {
		if op := g.Next(); op.Type == OpInsert {
			if op.Key != start+inserted {
				t.Fatalf("insert key %d, want %d (sequential)", op.Key, start+inserted)
			}
			inserted++
		}
	}
	if inserted == 0 {
		t.Fatal("no inserts generated")
	}
	if g.KeyCount() != start+inserted {
		t.Fatalf("key space %d, want %d", g.KeyCount(), start+inserted)
	}
}

func TestYCSBLatestFavorsRecent(t *testing.T) {
	g, err := NewYCSB(YCSBD, 10000, 11)
	if err != nil {
		t.Fatal(err)
	}
	recent := 0
	reads := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Type != OpRead {
			continue
		}
		reads++
		if op.Key >= g.KeyCount()-g.KeyCount()/10 {
			recent++
		}
	}
	if frac := float64(recent) / float64(reads); frac < 0.5 {
		t.Fatalf("latest distribution: only %.2f of reads in newest 10%%", frac)
	}
}

func TestOpTypeString(t *testing.T) {
	names := map[OpType]string{OpRead: "READ", OpUpdate: "UPDATE", OpInsert: "INSERT", OpScan: "SCAN", OpReadModifyWrite: "RMW"}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("OpType %d = %q", int(op), op.String())
		}
	}
	if YCSBA.String() != "YCSB-A" {
		t.Fatal("workload name wrong")
	}
	if len(AllYCSB()) != 6 {
		t.Fatal("AllYCSB length wrong")
	}
}

func TestValueGenStructure(t *testing.T) {
	vg := NewValueGen(64, 4, 0.02, 5)
	// Values of the same class stay close; different classes are far.
	a1 := vg.For(0)
	a2 := vg.For(4) // same class (4 % 4 == 0)
	b := vg.For(1)
	same := bitvec.HammingBytes(a1, a2)
	diff := bitvec.HammingBytes(a1, b)
	if same*3 > diff {
		t.Fatalf("value classes not separated: same=%d diff=%d", same, diff)
	}
	if len(a1) != 64 {
		t.Fatalf("value size %d", len(a1))
	}
}

// TestZetaStaticMatchesExact pins the Euler–Maclaurin tail of zetaStatic
// against brute-force summation above the exact-head cutoff, and
// quantifies how far off the old plain-integral approximation was.
func TestZetaStaticMatchesExact(t *testing.T) {
	brute := func(n uint64, theta float64) float64 {
		s := 0.0
		for i := uint64(1); i <= n; i++ {
			s += 1 / math.Pow(float64(i), theta)
		}
		return s
	}
	for _, theta := range []float64{0.5, 0.99} {
		for _, n := range []uint64{10000, 10001, 50000, 200000} {
			got, want := zetaStatic(n, theta), brute(n, theta)
			if err := math.Abs(got - want); err > 1e-9 {
				t.Errorf("zetaStatic(%d, %g) = %.12f, want %.12f (err %.3g)", n, theta, got, want, err)
			}
		}
	}
	// The old integral approximation was biased low by about ½·N^-θ —
	// orders of magnitude worse than the fixed version. Keep this as a
	// tripwire that the regression does not come back.
	theta, n := 0.99, uint64(200000)
	integral := brute(zetaHead, theta) +
		(math.Pow(float64(n), 1-theta)-math.Pow(float64(zetaHead), 1-theta))/(1-theta)
	exact := brute(n, theta)
	if bias := math.Abs(integral - exact); bias < 1e-5 {
		t.Fatalf("old integral approximation unexpectedly accurate (bias %.3g); test premise broken", bias)
	}
	if err := math.Abs(zetaStatic(n, theta) - exact); err > 1e-9 {
		t.Fatalf("fixed zetaStatic error %.3g not below 1e-9", err)
	}
}

// TestZipfFrequencyAccuracy draws from the generator over a keyspace past
// the exact-zeta cutoff and checks observed rank frequencies against the
// true zipf pmf — the hot-head split the cache benchmarks depend on.
func TestZipfFrequencyAccuracy(t *testing.T) {
	const n, draws = 50000, 400000
	theta := 0.99
	z := newZipf(rand.New(rand.NewSource(5)), n, theta)
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[z.next()]++
	}
	zn := zetaStatic(n, theta)
	// Ranks 0 and 1 are drawn exactly (the generator special-cases them
	// from the true zeta), so their frequencies pin zetan directly: the
	// old biased zetan shifted exactly this head mass.
	for _, rank := range []uint64{0, 1} {
		want := 1 / (math.Pow(float64(rank+1), theta) * zn)
		got := float64(counts[rank]) / draws
		if math.Abs(got-want) > 0.10*want+0.0005 {
			t.Errorf("rank %d frequency %.5f, want %.5f", rank, got, want)
		}
	}
	// Deeper ranks come from the continuous-CDF approximation, which is
	// only accurate in aggregate: check cumulative mass at several depths
	// against the true zipf CDF.
	for _, depth := range []uint64{10, 100, 1000} {
		var wantMass float64
		for i := uint64(1); i <= depth; i++ {
			wantMass += 1 / math.Pow(float64(i), theta)
		}
		wantMass /= zn
		head := 0
		for rank := uint64(0); rank < depth; rank++ {
			head += counts[rank]
		}
		gotMass := float64(head) / draws
		if math.Abs(gotMass-wantMass) > 0.10*wantMass {
			t.Errorf("top-%d mass %.4f, want %.4f", depth, gotMass, wantMass)
		}
	}
}
