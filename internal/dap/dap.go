// Package dap implements E2-NVM's cluster-to-memory Dynamic Address Pool
// (§3.3.1): a thread-safe map from cluster id to the list of free memory
// segment addresses whose current content belongs to that cluster.
//
// A PUT pops the first available address of the predicted cluster ("we just
// take the first available address in the cluster knowing that it will have
// a very similar content"); a DELETE recycles the freed address back into
// the cluster its content now belongs to. When a cluster runs dry the pool
// falls back to the nearest non-empty cluster so the system can always
// serve writes, and reports the cluster as low so the owner can trigger
// background retraining.
package dap

import (
	"fmt"
	"sync"
)

// Pool is a cluster-to-memory dynamic address pool.
type Pool struct {
	mu       sync.Mutex
	clusters [][]int // cluster id → FIFO of free addresses
	free     int     // total free addresses
	maxSize  int     // optional cap on total entries (0 = unlimited)

	// lowWater is the per-cluster threshold below which the cluster is
	// reported by LowClusters, the paper's retraining trigger.
	lowWater int

	popped uint64 // Get operations served
	pushed uint64 // Add operations accepted
}

// Option configures a Pool.
type Option func(*Pool)

// WithMaxEntries caps the total number of addresses the pool will hold —
// the paper's option (1) for bounding the DRAM footprint of the table.
func WithMaxEntries(n int) Option {
	return func(p *Pool) { p.maxSize = n }
}

// WithLowWater sets the per-cluster free-list threshold that marks a
// cluster as needing retraining (default 0: never low).
func WithLowWater(n int) Option {
	return func(p *Pool) { p.lowWater = n }
}

// New creates a pool with k clusters.
func New(k int, opts ...Option) (*Pool, error) {
	if k <= 0 {
		return nil, fmt.Errorf("dap: cluster count %d must be positive", k)
	}
	p := &Pool{clusters: make([][]int, k)}
	for _, o := range opts {
		o(p)
	}
	return p, nil
}

// K returns the number of clusters.
func (p *Pool) K() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.clusters)
}

// Add recycles a free address into cluster c. It returns false when the
// pool is at its configured capacity (the address is then simply dropped
// from tracking, matching the paper's bounded-table option).
func (p *Pool) Add(c, addr int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkCluster(c)
	if p.maxSize > 0 && p.free >= p.maxSize {
		return false
	}
	p.clusters[c] = append(p.clusters[c], addr)
	p.free++
	p.pushed++
	return true
}

// Get pops the first available address of cluster c. If c is empty, the
// nearest non-empty cluster (by cluster-id distance, a cheap proxy for
// latent-space adjacency) is used instead; fallback reports which cluster
// actually served the request. ok is false only when the whole pool is
// empty.
func (p *Pool) Get(c int) (addr, servedBy int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.checkCluster(c)
	if len(p.clusters[c]) > 0 {
		return p.pop(c), c, true
	}
	if p.free == 0 {
		return 0, 0, false
	}
	for d := 1; d < len(p.clusters); d++ {
		if cc := c - d; cc >= 0 && len(p.clusters[cc]) > 0 {
			return p.pop(cc), cc, true
		}
		if cc := c + d; cc < len(p.clusters) && len(p.clusters[cc]) > 0 {
			return p.pop(cc), cc, true
		}
	}
	// Unreachable: free > 0 implies some cluster is non-empty.
	return 0, 0, false
}

func (p *Pool) pop(c int) int {
	addr := p.clusters[c][0]
	p.clusters[c] = p.clusters[c][1:]
	p.free--
	p.popped++
	return addr
}

func (p *Pool) checkCluster(c int) {
	if c < 0 || c >= len(p.clusters) {
		panic(fmt.Sprintf("dap: cluster %d out of range [0,%d)", c, len(p.clusters)))
	}
}

// Free returns the total number of free addresses tracked.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// ClusterSizes returns the current free-list length of every cluster.
func (p *Pool) ClusterSizes() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, len(p.clusters))
	for i, c := range p.clusters {
		out[i] = len(c)
	}
	return out
}

// LowClusters returns the ids of clusters at or below the low-water mark —
// the signal E2-NVM uses to kick off background retraining (§4.1.4).
func (p *Pool) LowClusters() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lowWater <= 0 {
		return nil
	}
	var low []int
	for i, c := range p.clusters {
		if len(c) <= p.lowWater {
			low = append(low, i)
		}
	}
	return low
}

// Reset discards all entries and re-shapes the pool to k clusters —
// performed after a model retrain, when every free address is re-predicted
// under the new model.
func (p *Pool) Reset(k int) error {
	if k <= 0 {
		return fmt.Errorf("dap: cluster count %d must be positive", k)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clusters = make([][]int, k)
	p.free = 0
	return nil
}

// Stats reports cumulative pool activity.
type Stats struct {
	Free   int
	Popped uint64
	Pushed uint64
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Free: p.free, Popped: p.popped, Pushed: p.pushed}
}

// FootprintBytes estimates the pool's DRAM footprint: 8 bytes per tracked
// address plus 24 bytes of slice header per cluster (the quantity plotted
// in the paper's Figure 7).
func (p *Pool) FootprintBytes() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free*8 + len(p.clusters)*24
}
