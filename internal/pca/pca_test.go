package pca

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, 1); err == nil {
		t.Fatal("expected error on empty data")
	}
	data := [][]float64{{1, 2}, {3, 4}}
	if _, err := Fit(data, 0); err == nil {
		t.Fatal("expected error for dims=0")
	}
	if _, err := Fit(data, 3); err == nil {
		t.Fatal("expected error for dims>d")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, 1); err == nil {
		t.Fatal("expected error on ragged rows")
	}
}

// TestRecoversDominantDirection plants variance along a known axis and
// checks PCA finds it.
func TestRecoversDominantDirection(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	// Points spread along direction (1,1,0)/√2 with tiny noise elsewhere.
	dir := []float64{1 / math.Sqrt2, 1 / math.Sqrt2, 0}
	data := make([][]float64, 300)
	for i := range data {
		tval := r.NormFloat64() * 5
		data[i] = []float64{
			tval*dir[0] + r.NormFloat64()*0.01,
			tval*dir[1] + r.NormFloat64()*0.01,
			r.NormFloat64() * 0.01,
		}
	}
	m, err := Fit(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Components[0]
	// Component may be negated; compare |cos| to 1.
	cos := math.Abs(c[0]*dir[0] + c[1]*dir[1] + c[2]*dir[2])
	if cos < 0.999 {
		t.Fatalf("component %v not aligned with planted direction (|cos|=%v)", c, cos)
	}
	if m.Explained[0] < 10 {
		t.Fatalf("explained variance %v too small", m.Explained[0])
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := make([][]float64, 200)
	for i := range data {
		row := make([]float64, 6)
		for j := range row {
			row[j] = r.NormFloat64() * float64(j+1)
		}
		data[i] = row
	}
	m, err := Fit(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			dot := 0.0
			for k := range m.Components[i] {
				dot += m.Components[i][k] * m.Components[j][k]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("components %d,%d dot = %v, want %v", i, j, dot, want)
			}
		}
	}
	// Eigenvalues sorted descending.
	for i := 1; i < len(m.Explained); i++ {
		if m.Explained[i] > m.Explained[i-1]+1e-9 {
			t.Fatalf("explained variance not sorted: %v", m.Explained)
		}
	}
}

func TestTransformCentersData(t *testing.T) {
	data := [][]float64{{1, 0}, {3, 0}, {5, 0}}
	m, err := Fit(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The mean point must project to ~0.
	if z := m.Transform([]float64{3, 0}); math.Abs(z[0]) > 1e-9 {
		t.Fatalf("mean projects to %v, want 0", z[0])
	}
	all := m.TransformAll(data)
	if len(all) != 3 || len(all[0]) != 1 {
		t.Fatalf("TransformAll shape wrong")
	}
	// Projections of extremes are symmetric around 0.
	if math.Abs(all[0][0]+all[2][0]) > 1e-9 {
		t.Fatalf("projections not symmetric: %v", all)
	}
}

func TestTransformWrongSizePanics(t *testing.T) {
	m, err := Fit([][]float64{{1, 2}, {2, 1}, {0, 0}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Transform([]float64{1})
}

// TestPowerIterationPath exercises the wide-input fallback (d > 96) and
// checks it agrees with the planted structure.
func TestPowerIterationPath(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	d := 120
	data := make([][]float64, 150)
	for i := range data {
		row := make([]float64, d)
		tval := r.NormFloat64() * 4
		for j := range row {
			if j < 2 {
				row[j] = tval + r.NormFloat64()*0.05
			} else {
				row[j] = r.NormFloat64() * 0.05
			}
		}
		data[i] = row
	}
	m, err := Fit(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Components[0]
	// Dominant direction concentrates on the first two coordinates.
	mass := c[0]*c[0] + c[1]*c[1]
	if mass < 0.95 {
		t.Fatalf("leading component mass on planted coords = %v, want ≈1", mass)
	}
}

// TestReconstructionQuality: projecting onto all components and expanding
// back should reproduce the (centered) data for full-rank PCA.
func TestReconstructionQuality(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := make([][]float64, 50)
	for i := range data {
		data[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
	}
	m, err := Fit(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range data {
		z := m.Transform(x)
		recon := append([]float64(nil), m.Mean...)
		for k, comp := range m.Components {
			for j := range recon {
				recon[j] += z[k] * comp[j]
			}
		}
		for j := range x {
			if math.Abs(recon[j]-x[j]) > 1e-6 {
				t.Fatalf("full-rank reconstruction error %v at dim %d", recon[j]-x[j], j)
			}
		}
	}
}

func BenchmarkFitDim64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	data := make([][]float64, 300)
	for i := range data {
		row := make([]float64, 64)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		data[i] = row
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(data, 8); err != nil {
			b.Fatal(err)
		}
	}
}
