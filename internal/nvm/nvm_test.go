package nvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"e2nvm/internal/bitvec"
)

func mustDevice(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Config{SegmentSize: 0, NumSegments: 4}); err == nil {
		t.Fatal("expected error for zero segment size")
	}
	if _, err := NewDevice(Config{SegmentSize: 64, NumSegments: 0}); err == nil {
		t.Fatal("expected error for zero segments")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := mustDevice(t, DefaultConfig(64, 8))
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := d.Write(3, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

func TestWriteBadAddress(t *testing.T) {
	d := mustDevice(t, DefaultConfig(64, 4))
	if _, err := d.Write(4, make([]byte, 64)); err == nil {
		t.Fatal("expected ErrBadAddress for addr 4")
	}
	if _, err := d.Write(-1, make([]byte, 64)); err == nil {
		t.Fatal("expected ErrBadAddress for addr -1")
	}
	if _, err := d.Read(99); err == nil {
		t.Fatal("expected ErrBadAddress on read")
	}
}

func TestWriteWrongSize(t *testing.T) {
	d := mustDevice(t, DefaultConfig(64, 4))
	if _, err := d.Write(0, make([]byte, 63)); err == nil {
		t.Fatal("expected size error")
	}
}

func TestDifferentialWriteCountsFlips(t *testing.T) {
	d := mustDevice(t, DefaultConfig(8, 2))
	first := []byte{0xff, 0, 0, 0, 0, 0, 0, 0}
	res, err := d.Write(0, first)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsFlipped != 8 {
		t.Fatalf("first write flipped %d bits, want 8", res.BitsFlipped)
	}
	// Overwrite with one bit different.
	second := []byte{0xfe, 0, 0, 0, 0, 0, 0, 0}
	res, err = d.Write(0, second)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsFlipped != 1 {
		t.Fatalf("second write flipped %d bits, want 1", res.BitsFlipped)
	}
	if res.BitsWritten != 64 {
		t.Fatalf("BitsWritten = %d, want 64", res.BitsWritten)
	}
}

func TestIdenticalWriteSkipsLines(t *testing.T) {
	cfg := DefaultConfig(128, 2) // two 64 B cache lines per segment
	d := mustDevice(t, cfg)
	data := make([]byte, 128)
	for i := range data {
		data[i] = 0xab
	}
	if _, err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	res, err := d.Write(0, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsFlipped != 0 || res.LinesWritten != 0 || res.LinesSkipped != 2 {
		t.Fatalf("identical rewrite: %+v, want 0 flips, 0 written, 2 skipped", res)
	}
	// Latency for a fully-skipped write is just the base.
	if res.LatencyNs != cfg.WriteBaseLatencyNs {
		t.Fatalf("latency = %v, want base %v", res.LatencyNs, cfg.WriteBaseLatencyNs)
	}
}

func TestPartialLineDirtiness(t *testing.T) {
	d := mustDevice(t, DefaultConfig(128, 1)) // lines [0,64) and [64,128)
	data := make([]byte, 128)
	if _, err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	data[70] = 1 // dirty only the second line
	res, err := d.Write(0, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinesWritten != 1 || res.LinesSkipped != 1 {
		t.Fatalf("lines written/skipped = %d/%d, want 1/1", res.LinesWritten, res.LinesSkipped)
	}
	if res.BitsFlipped != 1 {
		t.Fatalf("flips = %d, want 1", res.BitsFlipped)
	}
}

func TestWriteRawChargesAllBits(t *testing.T) {
	d := mustDevice(t, DefaultConfig(64, 1))
	data := make([]byte, 64)
	res, err := d.WriteRaw(0, data) // writing zeros over zeros still programs all cells
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsFlipped != 64*8 {
		t.Fatalf("raw write flips = %d, want %d", res.BitsFlipped, 64*8)
	}
	if res.LinesWritten != 1 {
		t.Fatalf("raw write lines = %d, want 1", res.LinesWritten)
	}
}

func TestEnergyModel(t *testing.T) {
	cfg := DefaultConfig(8, 1)
	d := mustDevice(t, cfg)
	data := []byte{0x0f, 0, 0, 0, 0, 0, 0, 0} // 4 flips from zeroed state
	res, err := d.Write(0, data)
	if err != nil {
		t.Fatal(err)
	}
	want := 4*cfg.WriteEnergyPerBitPJ + cfg.AccessOverheadPJ
	if res.EnergyPJ != want {
		t.Fatalf("energy = %v, want %v", res.EnergyPJ, want)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := mustDevice(t, DefaultConfig(64, 4))
	data := make([]byte, 64)
	data[0] = 0xff
	for i := 0; i < 3; i++ {
		if _, err := d.Write(i, data); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Read(0); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Writes != 3 || s.Reads != 1 {
		t.Fatalf("writes/reads = %d/%d, want 3/1", s.Writes, s.Reads)
	}
	if s.BitsFlipped != 24 {
		t.Fatalf("BitsFlipped = %d, want 24", s.BitsFlipped)
	}
	if s.MaxSegmentWrites != 1 {
		t.Fatalf("MaxSegmentWrites = %d, want 1", s.MaxSegmentWrites)
	}
	d.ResetStats()
	if d.Stats().Writes != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestPeekIsFree(t *testing.T) {
	d := mustDevice(t, DefaultConfig(64, 2))
	before := d.Stats()
	if _, err := d.Peek(1); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after != before {
		t.Fatalf("Peek changed stats: %+v vs %+v", after, before)
	}
}

func TestFillSegmentIsFree(t *testing.T) {
	d := mustDevice(t, DefaultConfig(8, 2))
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := d.FillSegment(1, data); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Peek(1)
	for i := range data {
		if got[i] != data[i] {
			t.Fatal("FillSegment content mismatch")
		}
	}
	if d.Stats().Writes != 0 || d.Stats().BitsFlipped != 0 {
		t.Fatal("FillSegment charged costs")
	}
}

func TestFillRandomizes(t *testing.T) {
	d := mustDevice(t, DefaultConfig(256, 4))
	d.Fill(rand.New(rand.NewSource(7)))
	ones := 0
	for s := 0; s < 4; s++ {
		b, _ := d.Peek(s)
		ones += bitvec.FromBytes(b).OnesCount()
	}
	total := 4 * 256 * 8
	if ones < total/3 || ones > 2*total/3 {
		t.Fatalf("random fill density looks wrong: %d/%d ones", ones, total)
	}
	if d.Stats().BitsFlipped != 0 {
		t.Fatal("Fill charged flips")
	}
}

func TestWearLevelingMovesSegments(t *testing.T) {
	cfg := DefaultConfig(8, 4)
	cfg.WearLevelPeriod = 2
	d := mustDevice(t, cfg)
	// Each logical segment gets distinctive content.
	for s := 0; s < 4; s++ {
		data := make([]byte, 8)
		for i := range data {
			data[i] = byte(s + 1)
		}
		if err := d.FillSegment(s, data); err != nil {
			t.Fatal(err)
		}
	}
	data := make([]byte, 8)
	for w := 0; w < 10; w++ {
		data[0] = byte(w)
		if _, err := d.Write(w%4, data); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.WearLevelMoves != 5 {
		t.Fatalf("WearLevelMoves = %d, want 5 (10 writes / ψ=2)", s.WearLevelMoves)
	}
	// Logical address mapping must survive moves: read back what we wrote.
	got, err := d.Read(1) // last write to logical 1 had data[0]=9
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Fatalf("after wear leveling, logical 1 byte0 = %d, want 9", got[0])
	}
}

func TestWearLevelingChargesFlips(t *testing.T) {
	cfg := DefaultConfig(8, 2)
	cfg.WearLevelPeriod = 1
	d := mustDevice(t, cfg)
	one := make([]byte, 8)
	for i := range one {
		one[i] = 0xff
	}
	// With ψ=1 the first write triggers a move of the segment adjacent to
	// the gap (physical slot 1 = logical 1 initially) into the all-zero gap
	// slot, so seeding logical 1 with ones guarantees copy flips.
	if err := d.FillSegment(1, one); err != nil {
		t.Fatal(err)
	}
	res, err := d.Write(0, make([]byte, 8)) // zero write, 0 data flips, triggers a move
	if err != nil {
		t.Fatal(err)
	}
	if res.WearLevelOps != 1 {
		t.Fatalf("WearLevelOps = %d, want 1", res.WearLevelOps)
	}
	if d.Stats().WearLevelFlips == 0 {
		t.Fatal("expected wear-leveling copy to incur flips")
	}
}

// Property: under arbitrary interleavings of writes and wear-leveling
// moves, reading a logical address always returns the last value written
// to it.
func TestAddressMappingConsistency(t *testing.T) {
	f := func(seed int64, period uint8) bool {
		cfg := DefaultConfig(16, 6)
		cfg.WearLevelPeriod = int(period%5) + 1
		d, err := NewDevice(cfg)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		shadow := make([][]byte, 6)
		for i := range shadow {
			shadow[i] = make([]byte, 16)
		}
		for op := 0; op < 200; op++ {
			addr := r.Intn(6)
			data := make([]byte, 16)
			r.Read(data)
			if _, err := d.Write(addr, data); err != nil {
				return false
			}
			copy(shadow[addr], data)
			chk := r.Intn(6)
			got, err := d.Peek(chk)
			if err != nil {
				return false
			}
			for i := range got {
				if got[i] != shadow[chk][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBitWearTracking(t *testing.T) {
	cfg := DefaultConfig(8, 2)
	cfg.TrackBitWear = true
	d := mustDevice(t, cfg)
	data := make([]byte, 8)
	data[0] = 0x01
	if _, err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 0x00
	if _, err := d.Write(0, data); err != nil {
		t.Fatal(err)
	}
	wear := d.BitWear()
	if wear == nil {
		t.Fatal("BitWear nil with tracking enabled")
	}
	if wear[0] != 2 {
		t.Fatalf("bit 0 wear = %d, want 2", wear[0])
	}
	if wear[1] != 0 {
		t.Fatalf("bit 1 wear = %d, want 0", wear[1])
	}
	if lf := d.LifetimeFraction(); lf != 2/cfg.EnduranceWrites {
		t.Fatalf("LifetimeFraction = %v", lf)
	}
}

func TestBitWearDisabled(t *testing.T) {
	d := mustDevice(t, DefaultConfig(8, 1))
	if d.BitWear() != nil {
		t.Fatal("BitWear should be nil when disabled")
	}
	if d.LifetimeFraction() != 0 {
		t.Fatal("LifetimeFraction should be 0 when untracked")
	}
}

// Property: differential write flips exactly Hamming(old, new) cells.
func TestFlipsEqualHamming(t *testing.T) {
	f := func(seed int64) bool {
		d, err := NewDevice(DefaultConfig(32, 2))
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		old := make([]byte, 32)
		r.Read(old)
		if err := d.FillSegment(0, old); err != nil {
			return false
		}
		nw := make([]byte, 32)
		r.Read(nw)
		res, err := d.Write(0, nw)
		if err != nil {
			return false
		}
		return res.BitsFlipped == bitvec.HammingBytes(old, nw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWrites(t *testing.T) {
	d := mustDevice(t, DefaultConfig(64, 16))
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			data := make([]byte, 64)
			for i := 0; i < 100; i++ {
				data[0] = byte(i)
				if _, err := d.Write((g*2+i)%16, data); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := d.Stats().Writes; got != 800 {
		t.Fatalf("Writes = %d, want 800", got)
	}
}

func BenchmarkWrite256B(b *testing.B) {
	d, err := NewDevice(DefaultConfig(256, 1024))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	d.Fill(r)
	data := make([]byte, 256)
	r.Read(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Write(i%1024, data); err != nil {
			b.Fatal(err)
		}
	}
}
