package e2nvm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"e2nvm/internal/shard"
)

func replConfig(shards, rf int) Config {
	cfg := smallConfig()
	cfg.NumSegments = 64 * shards
	cfg.Shards = shards
	cfg.ReplicationFactor = rf
	return cfg
}

// keysOfShard returns count keys that hash to shardIdx of n shards.
func keysOfShard(n, shardIdx, count int) []uint64 {
	var out []uint64
	for k := uint64(0); len(out) < count; k++ {
		if int(shard.Mix64(k)%uint64(n)) == shardIdx {
			out = append(out, k)
		}
	}
	return out
}

// fenceShard fails every segment of shardIdx's zone — the current serving
// replica's whole device, log zone included, so both data placement and
// the redo log start refusing writes.
func fenceShard(t *testing.T, s *Store, shardIdx int) {
	t.Helper()
	for addr := s.starts[shardIdx]; addr < s.starts[shardIdx+1]; addr++ {
		if err := s.FailSegment(addr); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplicationOffByDefault(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.ReplicationFactor() != 1 {
		t.Fatalf("ReplicationFactor = %d, want 1", s.ReplicationFactor())
	}
	if s.Replication() != nil {
		t.Fatal("Replication() non-nil on an unreplicated store")
	}
	if err := s.CheckHealth(); err != nil {
		t.Fatalf("CheckHealth: %v", err)
	}
	s.Close() // must be a safe no-op
	if err := s.Put(1, []byte("v")); err != nil {
		t.Fatalf("Put after no-op Close: %v", err)
	}
}

// TestRF1MatchesUnreplicated pins the compatibility guarantee: setting
// ReplicationFactor to 1 explicitly must leave every byte of behaviour —
// placement, flips, energy — identical to a config without the field.
func TestRF1MatchesUnreplicated(t *testing.T) {
	run := func(cfg Config) (*Store, Metrics) {
		t.Helper()
		s, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 48; k++ {
			if err := s.Put(k, []byte(fmt.Sprintf("v-%d", k))); err != nil {
				t.Fatal(err)
			}
		}
		for k := uint64(0); k < 16; k++ {
			if _, err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
		return s, s.Metrics()
	}
	base, bm := run(shardedConfig(2))
	cfg := shardedConfig(2)
	cfg.ReplicationFactor = 1
	repl, rm := run(cfg)
	if bm != rm {
		t.Fatalf("metrics diverge:\nbase %+v\nrf=1 %+v", bm, rm)
	}
	if bw, rw := base.SegmentWrites(), repl.SegmentWrites(); len(bw) != len(rw) {
		t.Fatalf("segment write lengths differ: %d vs %d", len(bw), len(rw))
	} else {
		for i := range bw {
			if bw[i] != rw[i] {
				t.Fatalf("segment %d writes: %d vs %d", i, bw[i], rw[i])
			}
		}
	}
}

func TestReplicatedRoundTrip(t *testing.T) {
	s, err := Open(replConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.ReplicationFactor(); got != 2 {
		t.Fatalf("ReplicationFactor = %d, want 2", got)
	}
	if !strings.Contains(s.String(), "rf: 2") {
		t.Fatalf("String() = %q, want rf noted", s)
	}
	const n = 40
	for k := uint64(0); k < n; k++ {
		if err := s.Put(k, []byte(fmt.Sprintf("v-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(v, []byte(fmt.Sprintf("v-%d", k))) {
			t.Fatalf("Get(%d) = (%q,%v,%v)", k, v, ok, err)
		}
	}
	if ok, err := s.Delete(3); err != nil || !ok {
		t.Fatalf("Delete = (%v,%v)", ok, err)
	}
	// Batches flow through the replicated path with the same contract.
	keys := []uint64{100, 101, 102}
	vals := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	if err := s.PutBatch(keys, vals, nil); err != nil {
		t.Fatal(err)
	}
	dsts := make([][]byte, 3)
	oks := make([]bool, 3)
	if err := s.GetBatch(keys, dsts, oks, nil); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !oks[i] || !bytes.Equal(dsts[i], vals[i]) {
			t.Fatalf("GetBatch[%d] = (%q,%v)", i, dsts[i], oks[i])
		}
	}
	// An ordered scan sees every live key once.
	var got []uint64
	if err := s.Scan(0, ^uint64(0), func(k uint64, v []byte) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != s.Len() {
		t.Fatalf("scan visited %d keys, Len = %d", len(got), s.Len())
	}
	// Status plumbing: every shard active, one leader + one follower each.
	for _, sr := range s.Replication() {
		if sr.State != ShardActive {
			t.Fatalf("shard %d state = %s", sr.Shard, sr.State)
		}
		if len(sr.Replicas) != 2 || sr.Replicas[0].Role != RoleLeader || sr.Replicas[1].Role != RoleFollower {
			t.Fatalf("shard %d replicas = %+v", sr.Shard, sr.Replicas)
		}
	}
	for i, h := range s.ShardHealth() {
		if h.State != ShardActive {
			t.Fatalf("ShardHealth[%d].State = %s", i, h.State)
		}
	}
	if m := s.Metrics(); m.Failovers != 0 || m.MigratedRecords != 0 || m.Writes == 0 {
		t.Fatalf("Metrics = %+v", m)
	}
}

// TestReplicatedFailoverAndMigration drives the full lifecycle through the
// public API: fence shard 0's leader (failover to its follower, writes keep
// succeeding), then fence the promoted leader too (live migration into
// shard 1), asserting no acknowledged write is ever lost.
func TestReplicatedFailoverAndMigration(t *testing.T) {
	s, err := Open(replConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k0 := keysOfShard(2, 0, 10)
	k1 := keysOfShard(2, 1, 10)
	val := func(k uint64, round int) []byte { return []byte(fmt.Sprintf("k%d-r%d", k, round)) }
	for _, ks := range [][]uint64{k0, k1} {
		for _, k := range ks {
			if err := s.Put(k, val(k, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Round 1: kill shard 0's leader device. FailSegment resolves through
	// the serving replica, so this fences the original leader.
	fenceShard(t, s, 0)
	for _, k := range k0 {
		if err := s.Put(k, val(k, 1)); err != nil {
			t.Fatalf("Put(%d) during failover: %v", k, err)
		}
	}
	h := s.Health()
	if h.Failovers != 1 || h.DrainedShards != 0 {
		t.Fatalf("after first fence: %+v", h)
	}
	if sh := s.ShardHealth()[0]; sh.State != ShardActive || sh.Failovers != 1 {
		t.Fatalf("shard 0 after failover: %+v", sh)
	}

	// Round 2: kill the promoted leader too. With no replicas left the
	// keyspace live-migrates into shard 1; writes keep flowing meanwhile.
	// Only overwrite half the keys: the untouched half must reach the new
	// home through the migrator, not through client writes.
	fenceShard(t, s, 0)
	for _, k := range k0[:len(k0)/2] {
		if err := s.Put(k, val(k, 2)); err != nil {
			t.Fatalf("Put(%d) during drain: %v", k, err)
		}
	}
	s.Quiesce()
	if err := s.CheckHealth(); err != nil {
		t.Fatal(err)
	}
	s.Quiesce()
	if st := s.ShardHealth()[0].State; st != ShardDrained {
		t.Fatalf("shard 0 state = %s, want drained", st)
	}
	if m := s.Metrics(); m.MigratedRecords == 0 {
		t.Fatalf("MigratedRecords = 0 after a drain; metrics %+v", m)
	}

	// Zero lost acknowledged writes, keyspace fully served.
	for i, k := range k0 {
		want := val(k, 1)
		if i < len(k0)/2 {
			want = val(k, 2)
		}
		v, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("Get(%d) = (%q,%v,%v), want %q", k, v, ok, err, want)
		}
	}
	for _, k := range k1 {
		v, ok, err := s.Get(k)
		if err != nil || !ok || !bytes.Equal(v, val(k, 0)) {
			t.Fatalf("Get(%d) = (%q,%v,%v)", k, v, ok, err)
		}
	}
	if want := len(k0) + len(k1); s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	// And the drained shard's keys keep accepting writes on their new home.
	for _, k := range k0 {
		if err := s.Put(k, val(k, 3)); err != nil {
			t.Fatalf("post-drain Put(%d): %v", k, err)
		}
		if ok, err := s.Delete(k); err != nil || !ok {
			t.Fatalf("post-drain Delete(%d) = (%v,%v)", k, ok, err)
		}
	}
}
