package e2nvm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// TestFacadeBatchRoundTrip: the public PutBatch/GetBatch must round-trip
// through the sharded facade (shard grouping + per-shard batching) and
// agree with the per-item API.
func TestFacadeBatchRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := smallConfig()
			cfg.NumSegments = 64 * shards
			cfg.Shards = shards
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := 20
			keys := make([]uint64, n)
			vals := make([][]byte, n)
			for i := range keys {
				keys[i] = uint64(i * 11)
				vals[i] = []byte(fmt.Sprintf("batch-%02d", i))
			}
			if err := s.PutBatch(keys, vals, nil); err != nil {
				t.Fatalf("PutBatch: %v", err)
			}
			// Per-item reads see the batched writes…
			for i := range keys {
				got, ok, err := s.Get(keys[i])
				if err != nil || !ok || !bytes.Equal(got, vals[i]) {
					t.Fatalf("Get(%d) = %q ok=%v err=%v, want %q", keys[i], got, ok, err, vals[i])
				}
			}
			// …and batched reads see per-item writes mixed with misses.
			if err := s.Put(7777, []byte("solo")); err != nil {
				t.Fatal(err)
			}
			qk := []uint64{keys[0], 7777, 424242}
			dsts := make([][]byte, len(qk))
			oks := make([]bool, len(qk))
			if err := s.GetBatch(qk, dsts, oks, nil); err != nil {
				t.Fatalf("GetBatch: %v", err)
			}
			if !oks[0] || !oks[1] || oks[2] {
				t.Fatalf("oks = %v, want [true true false]", oks)
			}
			if string(dsts[1]) != "solo" {
				t.Fatalf("dsts[1] = %q, want solo", dsts[1])
			}
			if s.Len() != n+1 {
				t.Fatalf("Len = %d, want %d", s.Len(), n+1)
			}
		})
	}
}

// TestFacadeBatchErrorsSurviveShardBoundary: a per-item failure inside one
// shard's sub-batch must come back through the router's regroup machinery
// still answering errors.Is against the public sentinel, and must not
// abort the other items (including ones routed to other shards).
func TestFacadeBatchErrorsSurviveShardBoundary(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := smallConfig()
			cfg.NumSegments = 64 * shards
			cfg.Shards = shards
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			keys := []uint64{3, 17, 31, 45}
			vals := [][]byte{
				[]byte("ok-0"),
				make([]byte, s.MaxValue()+1), // too large: per-item sentinel
				[]byte("ok-2"),
				[]byte("ok-3"),
			}
			errs := make([]error, len(keys))
			err = s.PutBatch(keys, vals, errs)
			if !errors.Is(err, ErrValueTooLarge) {
				t.Fatalf("PutBatch returned %v, want errors.Is ErrValueTooLarge", err)
			}
			for i, e := range errs {
				if i == 1 {
					if !errors.Is(e, ErrValueTooLarge) {
						t.Fatalf("errs[1] = %v, want errors.Is ErrValueTooLarge", e)
					}
					continue
				}
				if e != nil {
					t.Fatalf("errs[%d] = %v, want nil", i, e)
				}
			}
			// The failed item must not have blocked its siblings.
			for _, i := range []int{0, 2, 3} {
				got, ok, err := s.Get(keys[i])
				if err != nil || !ok || !bytes.Equal(got, vals[i]) {
					t.Fatalf("Get(%d) = %q ok=%v err=%v, want %q", keys[i], got, ok, err, vals[i])
				}
			}
		})
	}
}

// TestOpenConfigErrors: geometry mistakes at Open answer errors.Is
// against ErrConfig.
func TestOpenConfigErrors(t *testing.T) {
	cfg := smallConfig()
	cfg.NumSegments = 4
	cfg.Shards = 8 // more shards than segments
	if _, err := Open(cfg); !errors.Is(err, ErrConfig) {
		t.Fatalf("Open = %v, want errors.Is ErrConfig", err)
	}
}
