// Package e2nvm is a memory-aware storage layer that improves the energy
// efficiency and write endurance of non-volatile memories (NVMs) by
// steering writes to memory segments whose current content is similar — in
// Hamming distance — to the value being written, so that differential
// writes flip fewer PCM cells.
//
// It is a from-scratch Go reproduction of "E2-NVM: A Memory-Aware Write
// Scheme to Improve Energy Efficiency and Write Endurance of NVMs using
// Variational Autoencoders" (EDBT 2023). The placement decision is made by
// a variational autoencoder jointly trained with K-means clustering over
// the bit images of free memory segments; a cluster-to-memory dynamic
// address pool tracks free segments per cluster; undersized items are
// fitted to the model with configurable padding strategies, including an
// LSTM-based learned padding.
//
// Because real Optane/PCM hardware is not assumed, the library ships a
// cycle- and energy-modeled PCM device simulator that counts bit flips,
// cache-line writes, per-segment and per-bit wear, and models start-gap
// wear leveling. The simulator is also what the benchmark harness uses to
// regenerate the paper's figures (see EXPERIMENTS.md).
//
// # Quick start
//
//	store, err := e2nvm.Open(e2nvm.Config{SegmentSize: 256, NumSegments: 4096})
//	if err != nil { ... }
//	err = store.Put(42, []byte("value"))
//	v, ok, err := store.Get(42)
//	m := store.Metrics() // bit flips, energy, latency, wear
package e2nvm

import (
	"fmt"
	"math/rand"

	"e2nvm/internal/core"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/padding"
)

// Placement selects the write-placement policy.
type Placement int

// Placement policies.
const (
	// PlacementE2NVM steers each write to a free segment with similar
	// content (the paper's scheme). This is the default.
	PlacementE2NVM Placement = iota
	// PlacementArbitrary picks any free segment for new keys and updates
	// in place — the behaviour of conventional stores, kept as a
	// baseline.
	PlacementArbitrary
)

// PadLocation mirrors the paper's padding positions for undersized values.
type PadLocation int

// Padding locations.
const (
	PadEnd PadLocation = iota
	PadBegin
	PadMiddle
	PadEdges
)

// PadType mirrors the paper's padding-content strategies.
type PadType int

// Padding types.
const (
	PadInputBased PadType = iota // Bernoulli with the item's own 1-density (default)
	PadZero
	PadOne
	PadRandom
	PadDatasetBased
	PadMemoryBased
	PadLearned // sliding-window LSTM (§4.1.3)
)

// Config configures Open.
type Config struct {
	// SegmentSize is the NVM segment size in bytes (default 256, one
	// Optane block).
	SegmentSize int
	// NumSegments is the size of the managed memory pool (default 1024).
	NumSegments int

	// Clusters is the number of content clusters K; 0 selects K with the
	// elbow method.
	Clusters int
	// TrainEpochs is the VAE pretraining epoch count (default 15).
	TrainEpochs int
	// LatentDim is the VAE latent width (default 10, as in the paper).
	LatentDim int

	// Placement selects the placement policy.
	Placement Placement
	// PadLocation and PadType select the padding strategy for values
	// narrower than a segment.
	PadLocation PadLocation
	PadType     PadType

	// WearLevelPeriod is the simulated controller's start-gap swap period
	// ψ (0 disables wear leveling).
	WearLevelPeriod int
	// TrackBitWear enables per-bit wear counters (costly; used for wear
	// CDFs).
	TrackBitWear bool
	// AutoRetrain retrains the model in the background when a cluster's
	// free list runs low.
	AutoRetrain bool
	// CrashSafe routes every write through a redo-log transaction (the
	// role PMDK transactions play in the paper), making writes atomic
	// across torn cache lines at the cost of logging write amplification.
	CrashSafe bool

	// EnduranceWrites overrides the simulated per-cell write endurance
	// budget (default 1e8). Lifetime experiments set it low so wear-out
	// is reachable in minutes.
	EnduranceWrites float64
	// Fault configures the device's seeded cell wear-out process; the
	// zero value disables probabilistic faults.
	Fault FaultConfig
	// VerifyWrites models a controller that reads back after
	// programming, so writes landing on stuck cells fail loudly with
	// ErrWornOut instead of silently storing faulty bits.
	VerifyWrites bool
	// PutRetries bounds how many alternative segments a Put tries when
	// verify-after-write finds the target worn (default 8).
	PutRetries int
	// DisableRetirement keeps worn segments in circulation: writes
	// surface ErrWornOut but nothing is fenced off (baseline mode for
	// lifetime experiments).
	DisableRetirement bool
	// DegradeThreshold is the fraction of data segments that may be
	// retired before allocation failures escalate from ErrNoSpace to
	// ErrDegraded (default 0.1).
	DegradeThreshold float64

	// Seed makes training and simulation deterministic.
	Seed int64

	// SeedContent, when non-nil, initializes every segment's content from
	// the reader-like generator before training; by default segments are
	// filled with uniformly random bytes under Seed.
	SeedContent func(addr int, segment []byte)
}

func (c Config) withDefaults() Config {
	if c.SegmentSize <= 0 {
		c.SegmentSize = 256
	}
	if c.NumSegments <= 0 {
		c.NumSegments = 1024
	}
	if c.TrainEpochs <= 0 {
		c.TrainEpochs = 15
	}
	if c.LatentDim <= 0 {
		c.LatentDim = 10
	}
	return c
}

func (c Config) padLocation() padding.Location {
	switch c.PadLocation {
	case PadBegin:
		return padding.Begin
	case PadMiddle:
		return padding.Middle
	case PadEdges:
		return padding.Edges
	default:
		return padding.End
	}
}

func (c Config) padType() padding.Type {
	switch c.PadType {
	case PadZero:
		return padding.Zero
	case PadOne:
		return padding.One
	case PadRandom:
		return padding.Random
	case PadDatasetBased:
		return padding.DatasetBased
	case PadMemoryBased:
		return padding.MemoryBased
	case PadLearned:
		return padding.Learned
	default:
		return padding.InputBased
	}
}

func (c Config) deviceConfig() nvm.Config {
	devCfg := nvm.DefaultConfig(c.SegmentSize, c.NumSegments)
	devCfg.WearLevelPeriod = c.WearLevelPeriod
	devCfg.TrackBitWear = c.TrackBitWear
	if c.EnduranceWrites > 0 {
		devCfg.EnduranceWrites = c.EnduranceWrites
	}
	devCfg.Fault = c.Fault.toInternal()
	devCfg.VerifyWrites = c.VerifyWrites
	return devCfg
}

func (c Config) storeOptions(placement kvstore.Placement) kvstore.Options {
	return kvstore.Options{
		Placement:         placement,
		AutoRetrain:       c.AutoRetrain,
		CrashSafe:         c.CrashSafe,
		PutRetries:        c.PutRetries,
		DisableRetirement: c.DisableRetirement,
		DegradeThreshold:  c.DegradeThreshold,
	}
}

// Store is an E2-NVM-managed persistent key/value store over a simulated
// PCM device. All methods are safe for concurrent use.
type Store struct {
	inner *kvstore.Store
	dev   *nvm.Device
}

// Open creates a simulated PCM device, seeds its contents, trains the
// E2-NVM model on them, and returns a ready store.
func Open(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	dev, err := nvm.NewDevice(cfg.deviceConfig())
	if err != nil {
		return nil, err
	}
	if cfg.SeedContent != nil {
		buf := make([]byte, cfg.SegmentSize)
		for a := 0; a < cfg.NumSegments; a++ {
			for i := range buf {
				buf[i] = 0
			}
			cfg.SeedContent(a, buf)
			if err := dev.FillSegment(a, buf); err != nil {
				return nil, err
			}
		}
	} else {
		dev.Fill(rand.New(rand.NewSource(cfg.Seed)))
	}

	modelCfg := core.Config{
		K:           cfg.Clusters,
		LatentDim:   cfg.LatentDim,
		Epochs:      cfg.TrainEpochs,
		Seed:        cfg.Seed,
		PadExplicit: true,
		PadLocation: cfg.padLocation(),
		PadType:     cfg.padType(),
	}
	placement := kvstore.PlaceE2NVM
	if cfg.Placement == PlacementArbitrary {
		placement = kvstore.PlaceArbitrary
	}
	inner, err := kvstore.Open(dev, modelCfg, cfg.storeOptions(placement))
	if err != nil {
		return nil, err
	}
	return &Store{inner: inner, dev: dev}, nil
}

// Put stores value under key (the paper's PUT/UPDATE write path).
func (s *Store) Put(key uint64, value []byte) error { return s.inner.Put(key, value) }

// Get returns the value stored under key as a fresh caller-owned copy.
func (s *Store) Get(key uint64) ([]byte, bool, error) { return s.inner.Get(key) }

// GetInto is Get writing the value into dst's backing array (grown only
// when too small), for callers that reuse one buffer across reads. It
// returns the resulting slice, which may share storage with dst.
func (s *Store) GetInto(key uint64, dst []byte) ([]byte, bool, error) {
	return s.inner.GetInto(key, dst)
}

// Delete removes key, recycling its segment into the address pool.
func (s *Store) Delete(key uint64) (bool, error) { return s.inner.Delete(key) }

// Scan visits keys in [lo, hi] in ascending order until fn returns false.
func (s *Store) Scan(lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	return s.inner.Scan(lo, hi, fn)
}

// Len returns the number of live keys.
func (s *Store) Len() int { return s.inner.Len() }

// MaxValue returns the largest storable value in bytes.
func (s *Store) MaxValue() int { return s.inner.MaxValue() }

// Clusters returns the number of content clusters the model learned.
func (s *Store) Clusters() int { return s.inner.Model().K() }

// NeedsRetrain reports whether a cluster's free list is running low.
func (s *Store) NeedsRetrain() bool { return s.inner.NeedsRetrain() }

// Retrain synchronously retrains the model on the device's current
// contents and rebuilds the address pool.
func (s *Store) Retrain() error { return s.inner.Retrain() }

// Metrics is a snapshot of device- and store-level activity.
type Metrics struct {
	// Writes and Reads are device operation counts.
	Writes, Reads uint64
	// BitsFlipped is the number of PCM cells actually programmed; the
	// paper's headline metric. BitsWritten is the payload presented.
	BitsFlipped, BitsWritten uint64
	// EnergyPJ is the modeled device energy in picojoules.
	EnergyPJ float64
	// AvgWriteLatencyNs is the mean modeled write latency.
	AvgWriteLatencyNs float64
	// LinesWritten/LinesSkipped count 64 B cache lines the controller
	// wrote vs skipped as unchanged.
	LinesWritten, LinesSkipped uint64
	// MaxSegmentWrites is the hottest segment's write count.
	MaxSegmentWrites uint64
	// WearLevelMoves counts start-gap segment moves.
	WearLevelMoves uint64
	// Fallbacks counts placements served by a non-predicted cluster.
	Fallbacks uint64
	// Retrains counts completed model retrains.
	Retrains int
	// WornWrites counts writes that hit worn-out cells and were retried
	// or refused; RetiredSegments counts segments taken out of
	// circulation; Relocations counts live records Scrub moved to
	// healthy segments.
	WornWrites, RetiredSegments, Relocations uint64
	// StuckBits is the number of cells currently stuck device-wide;
	// FailedSegments counts segments fenced entirely.
	StuckBits, FailedSegments uint64
	// FlipsPerDataBit is BitsFlipped / BitsWritten (0 when nothing was
	// written) — Figure 12's metric.
	FlipsPerDataBit float64
}

// Metrics returns a snapshot of cumulative counters.
func (s *Store) Metrics() Metrics {
	ds := s.dev.Stats()
	ss := s.inner.Stats()
	m := Metrics{
		Writes:           ds.Writes,
		Reads:            ds.Reads,
		BitsFlipped:      ds.BitsFlipped,
		BitsWritten:      ds.BitsWritten,
		EnergyPJ:         ds.EnergyPJ,
		LinesWritten:     ds.LinesWritten,
		LinesSkipped:     ds.LinesSkipped,
		MaxSegmentWrites: ds.MaxSegmentWrites,
		WearLevelMoves:   ds.WearLevelMoves,
		Fallbacks:        ss.Fallbacks,
		Retrains:         ss.Retrains,
		WornWrites:       ss.WornWrites,
		RetiredSegments:  ss.Retired,
		Relocations:      ss.Relocations,
		StuckBits:        ds.StuckBits,
		FailedSegments:   ds.FailedSegments,
	}
	if ds.Writes > 0 {
		m.AvgWriteLatencyNs = ds.WriteLatencyNs / float64(ds.Writes)
	}
	if ds.BitsWritten > 0 {
		m.FlipsPerDataBit = float64(ds.BitsFlipped) / float64(ds.BitsWritten)
	}
	return m
}

// ResetMetrics zeroes the cumulative counters (content and wear state are
// preserved), so benchmarks can exclude setup costs.
func (s *Store) ResetMetrics() { s.dev.ResetStats() }

// BitWear returns a copy of the per-bit flip counters, or nil when
// Config.TrackBitWear was false.
func (s *Store) BitWear() []uint32 { return s.dev.BitWear() }

// SegmentWrites returns per-segment write-operation counts.
func (s *Store) SegmentWrites() []uint64 { return s.dev.SegmentWrites() }

// String summarizes the store configuration.
func (s *Store) String() string {
	return fmt.Sprintf("e2nvm.Store{segments: %d×%dB, k: %d}",
		s.dev.NumSegments(), s.dev.SegmentSize(), s.Clusters())
}
