package experiments

import (
	"fmt"

	"e2nvm/internal/core"
	"e2nvm/internal/kvstore"
	"e2nvm/internal/nvm"
	"e2nvm/internal/stats"
	"e2nvm/internal/workload"
)

func init() { register("fig11", Fig11) }

// Fig11 reproduces Figure 11: the average energy consumed per PMem
// cache-line access while running the six YCSB core workloads, as the
// memory segment size changes and for two cluster counts. Smaller segments
// and more clusters both reduce per-access energy.
func Fig11(cfg RunConfig) (*Result, error) {
	segSizes := []int{32, 128, 512}
	ks := []int{5, 20}
	numSegs := cfg.scaleInt(384, 96)
	ops := cfg.scaleInt(1500, 250)

	table := stats.NewTable("workload", "segment_B", "k", "energy_pJ/cacheline", "flips/write")

	for _, segSize := range segSizes {
		segBits := segSize * 8
		// Seed images shared by every run at this segment size.
		vg := workload.NewValueGen(segSize-kvstore.RecordOverhead, 12, 0.03, cfg.Seed)
		// Seed segments shaped like store records ([flag][len][value]).
		seedImgs := make([][]byte, numSegs)
		for i := range seedImgs {
			img := make([]byte, segSize)
			img[0] = 1
			copy(img[kvstore.RecordOverhead:], vg.For(uint64(i)))
			seedImgs[i] = img
		}
		seedBits := make([][]float64, numSegs)
		for i, img := range seedImgs {
			seedBits[i] = core.BytesToBits(img)
		}
		for _, k := range ks {
			model, err := core.Train(seedBits, core.Config{
				InputBits: segBits, K: k, LatentDim: 10, HiddenDim: 48,
				Epochs: 6, JointEpochs: 1, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			for _, w := range workload.AllYCSB() {
				dev, err := seededDevice(nvm.DefaultConfig(segSize, numSegs), seedImgs)
				if err != nil {
					return nil, err
				}
				store, err := kvstore.OpenWith(dev, model, kvstore.Options{})
				if err != nil {
					return nil, err
				}
				recordCount := numSegs / 3
				gen, err := workload.NewYCSB(w, recordCount, cfg.Seed)
				if err != nil {
					return nil, err
				}
				// Values drift across versions, so updates carry new
				// content (the regime where placement matters).
				versions := map[uint64]int{}
				valFor := func(key uint64) []byte {
					return vg.ForVersion(key, versions[key])
				}
				for key := uint64(0); key < uint64(recordCount); key++ {
					if err := store.Put(key, valFor(key)); err != nil {
						return nil, err
					}
				}
				dev.ResetStats()
				for i := 0; i < ops; i++ {
					op := gen.Next()
					switch op.Type {
					case workload.OpRead:
						if _, _, err := store.Get(op.Key); err != nil {
							return nil, err
						}
					case workload.OpUpdate, workload.OpInsert:
						versions[op.Key]++
						if err := store.Put(op.Key, valFor(op.Key)); err != nil {
							return nil, err
						}
					case workload.OpScan:
						n := 0
						if err := store.Scan(op.Key, op.Key+uint64(op.ScanLen), func(uint64, []byte) bool {
							n++
							return true
						}); err != nil {
							return nil, err
						}
					case workload.OpReadModifyWrite:
						if _, _, err := store.Get(op.Key); err != nil {
							return nil, err
						}
						versions[op.Key]++
						if err := store.Put(op.Key, valFor(op.Key)); err != nil {
							return nil, err
						}
					}
				}
				s := dev.Stats()
				linesPerSeg := uint64((segSize + 63) / 64)
				accesses := s.LinesWritten + s.LinesSkipped + s.Reads*linesPerSeg
				if accesses == 0 {
					accesses = 1
				}
				flipsPerWrite := 0.0
				if s.Writes > 0 {
					flipsPerWrite = float64(s.BitsFlipped) / float64(s.Writes)
				}
				table.AddRow(w.String(), segSize, k, s.EnergyPJ/float64(accesses), flipsPerWrite)
			}
		}
	}
	return &Result{
		ID:    "fig11",
		Title: "Energy per cache-line access vs segment size, YCSB A–F",
		Table: table,
		Notes: []string{
			fmt.Sprintf("%d segments, %d ops per run, record count = segments/3", numSegs, ops),
			"expected shape: energy per access falls with smaller segments and with more clusters",
		},
	}, nil
}
