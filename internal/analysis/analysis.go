// Package analysis is a small, self-contained reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// built on the standard library's go/parser and go/types only, so the lint
// suite needs no external module downloads.
//
// The suite enforces invariants this codebase relies on but the compiler
// cannot check:
//
//   - lockdiscipline: mutex-guarded struct fields are only touched under
//     their mutex, and no return path leaks a held lock;
//   - seededrand: library code never draws from the global math/rand
//     source, keeping experiments reproducible under a seed;
//   - floateq: numeric code never compares floats with ==/!= except
//     against a literal-zero sentinel;
//   - nopanic: exported API paths of the storage packages return errors
//     instead of panicking.
//
// A diagnostic can be suppressed at a specific site with a trailing or
// preceding comment of the form:
//
//	// lint:allow <name>[,<name>...] — reason
//
// which the Pass honors before reporting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in lint:allow
	// comments.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run performs the check on one package, reporting findings through
	// the pass.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic like a compiler error.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	allow allowIndex
}

// NewPass prepares a pass over pkg for a. Diagnostics accumulate into out.
func NewPass(a *Analyzer, pkg *Package, out *[]Diagnostic) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		diags:     out,
		allow:     allowIndex{},
	}
	for _, f := range pkg.Files {
		p.allow.indexFile(pkg.Fset, f)
	}
	return p
}

var allowRe = regexp.MustCompile(`lint:allow\s+([A-Za-z0-9_,]+)`)

// allowIndex records every lint:allow comment by filename and line, shared
// by the per-package Pass and the whole-program ProgramPass.
type allowIndex map[string]map[int][]string

// indexFile records every lint:allow comment of f so reporting can honor
// the escape hatch.
func (ai allowIndex) indexFile(fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			byLine := ai[pos.Filename]
			if byLine == nil {
				byLine = map[int][]string{}
				ai[pos.Filename] = byLine
			}
			names := strings.Split(m[1], ",")
			byLine[pos.Line] = append(byLine[pos.Line], names...)
		}
	}
}

// allowed reports whether an allow comment for name sits on the diagnosed
// line or the line directly above it.
func (ai allowIndex) allowed(pos token.Position, name string) bool {
	byLine := ai[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, n := range byLine[line] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// Reportf records a diagnostic at pos unless a lint:allow comment
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.allow.allowed(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
