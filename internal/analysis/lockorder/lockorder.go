// Package lockorder defines a whole-program Analyzer that builds the
// lock-acquisition graph — which mutexes may be held when each other
// mutex is acquired, propagated inter-procedurally across package
// boundaries (shard.Router → kvstore.Store → dap.Pool chains) — and
// reports cycles: two locks ever taken in both orders on different code
// paths, or one lock re-acquired while already held. Either is a
// potential deadlock sync.Mutex turns into a certain one.
//
// The graph comes from the shared lock machinery in internal/analysis:
// mutexes are tracked at type granularity (every kvstore.Store instance
// is "kvstore.Store.mu"), goroutine bodies start with no inherited locks,
// and closures conservatively inherit their creation-site held set. A
// closure that provably runs after release (a completion callback
// dispatched from a goroutine, say) declares so with `lint:allow
// lockorder` on its creation line, which prunes the propagation edge.
package lockorder

import (
	"fmt"
	"strings"

	"e2nvm/internal/analysis"
)

// Analyzer reports cycles in the program's lock-acquisition graph.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "lockorder",
	Doc: "mutex pairs must be acquired in one global order on every code path, " +
		"and no path may re-acquire a mutex it already holds; cycles are potential deadlocks",
	Run: run,
}

func run(pass *analysis.ProgramPass) error {
	li := analysis.CollectLockInfo(pass.Pkgs)
	lg := li.BuildLockGraph(pass.Graph, func(_ *analysis.FuncNode, c analysis.Call) bool {
		return pass.Allowed(c.Site)
	})

	// Report each elementary cycle once, keyed by its smallest LockID:
	// BFS from every id in sorted order and keep only cycles whose
	// minimum element is the start, so A -> B -> A and B -> A -> B are the
	// same finding.
	for _, start := range lg.Order {
		cycle := shortestCycle(lg, start)
		if cycle == nil {
			continue
		}
		min := cycle[0]
		for _, id := range cycle {
			if id < min {
				min = id
			}
		}
		if min != start {
			continue
		}
		report(pass, lg, cycle)
	}
	return nil
}

// shortestCycle returns the lock sequence of a shortest cycle through
// start — [start, next, ..., last] with an edge last -> start — or nil.
func shortestCycle(lg *analysis.LockGraph, start analysis.LockID) []analysis.LockID {
	type hop struct {
		id   analysis.LockID
		prev int // index into visits, -1 for the start
	}
	visits := []hop{{id: start, prev: -1}}
	seen := map[analysis.LockID]bool{start: true}
	for i := 0; i < len(visits); i++ {
		cur := visits[i]
		inner := lg.Edges[cur.id]
		for _, next := range sortedInner(inner) {
			if next == start {
				// Reconstruct start -> ... -> cur.id, then the closing edge.
				var rev []analysis.LockID
				for j := i; j != -1; j = visits[j].prev {
					rev = append(rev, visits[j].id)
				}
				out := make([]analysis.LockID, 0, len(rev))
				for j := len(rev) - 1; j >= 0; j-- {
					out = append(out, rev[j])
				}
				return out
			}
			if !seen[next] {
				seen[next] = true
				visits = append(visits, hop{id: next, prev: i})
			}
		}
	}
	return nil
}

func sortedInner(m map[analysis.LockID]*analysis.LockEdge) []analysis.LockID {
	out := make([]analysis.LockID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// report emits one diagnostic for the cycle, positioned at its first
// edge's acquisition site and naming every edge's witness.
func report(pass *analysis.ProgramPass, lg *analysis.LockGraph, cycle []analysis.LockID) {
	if len(cycle) == 1 {
		e := lg.Edges[cycle[0]][cycle[0]]
		pass.Reportf(e.Site, "potential deadlock: %s acquired while already held in %s (%s)",
			e.Inner, e.Fn.Name(), e.Chain)
		return
	}
	var edges []*analysis.LockEdge
	for i := range cycle {
		edges = append(edges, lg.Edges[cycle[i]][cycle[(i+1)%len(cycle)]])
	}
	var seq, wit []string
	for _, id := range cycle {
		seq = append(seq, string(id))
	}
	seq = append(seq, string(cycle[0]))
	for _, e := range edges {
		wit = append(wit, fmt.Sprintf("%s acquired while %s held in %s (%s) at %s",
			e.Inner, e.Outer, e.Fn.Name(), e.Chain, pass.Fset.Position(e.Site)))
	}
	pass.Reportf(edges[0].Site, "potential deadlock: lock-order cycle %s; %s",
		strings.Join(seq, " -> "), strings.Join(wit, "; "))
}
